"""A chaos wrapper for result stores: planned, transient write failures.

:class:`FaultyStore` decorates any :class:`~repro.store.base.ResultStore`
and fails ``put`` calls according to the wrapped
:class:`~repro.faults.plan.FaultPlan`'s ``store_failure_rate`` channel —
deterministically per fingerprint digest, and *transiently*: the store
counts attempts per digest, so a retried write (same campaign or a
resume) goes through.  Reads are never perturbed; a store that lies on
reads would break the caching contract rather than test resilience to
flaky persistence.

Used by the chaos tests to pin down that
:class:`~repro.store.CachingRunner` treats the store as a cache, not a
correctness dependency: a failed write costs a cache entry, never an
outcome.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional

from repro.faults.plan import FaultPlan, InjectedFaultError
from repro.store.base import Fingerprintish, ResultStore, _digest

__all__ = ["FaultyStore"]


class FaultyStore(ResultStore):
    """Delegating store whose writes fail on the plan's schedule."""

    def __init__(self, inner: ResultStore, plan: FaultPlan) -> None:
        self._inner = inner
        self._plan = plan
        self._write_attempts: Dict[str, int] = {}
        #: Digests whose first write was dropped (observable by tests).
        self.failed_writes: int = 0

    def get(self, fingerprint: Fingerprintish):
        return self._inner.get(fingerprint)

    def put(self, fingerprint: Fingerprintish, outcome) -> None:
        digest = _digest(fingerprint)
        attempt = self._write_attempts.get(digest, 0) + 1
        self._write_attempts[digest] = attempt
        if self._plan.store_write_fails(digest, attempt):
            self.failed_writes += 1
            raise InjectedFaultError(
                f"injected store-write failure for {digest[:12]} "
                f"(attempt {attempt})"
            )
        self._inner.put(fingerprint, outcome)

    def fingerprints(self) -> FrozenSet[str]:
        return self._inner.fingerprints()

    def close(self) -> None:
        self._inner.close()
