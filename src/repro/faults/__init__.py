"""Fault injection and fault-tolerant supervision for campaigns.

The package has two halves:

* :mod:`repro.faults.plan` — the *chaos* side: a deterministic, seeded
  :class:`FaultPlan` describing which scenarios crash their worker,
  hang, raise or are delayed (and which store writes fail), plus the
  :class:`RetryPolicy` and :class:`FaultStats` that parameterise and
  report surviving it.
* :mod:`repro.faults.supervisor` — the *tolerance* side: the
  :class:`Supervisor` dispatch loop the campaign runner executes on,
  with bounded waits, per-task deadlines, worker-death detection,
  retry/bisection and poison-spec quarantine.

``CampaignRunner(faults=FaultPlan(...), retry=RetryPolicy(...))``
threads both through every backend; the headline invariant (pinned in
``tests/faults/``) is that a quarantine-free plan never changes a
campaign's outcomes — only its schedule.

:class:`FaultyStore` (store-write chaos) is exposed lazily because it
pulls in :mod:`repro.store`, which itself imports the campaign runner;
``from repro.faults import FaultyStore`` works once either package is
fully loaded, which is always true outside the import dance itself.
"""

from repro.faults.plan import (
    FAULT_KINDS,
    FaultAction,
    FaultPlan,
    FaultStats,
    InjectedFaultError,
    RetryPolicy,
)
from repro.faults.supervisor import QuarantineError, Supervisor

__all__ = [
    "FAULT_KINDS",
    "FaultAction",
    "FaultPlan",
    "FaultStats",
    "FaultyStore",
    "InjectedFaultError",
    "QuarantineError",
    "RetryPolicy",
    "Supervisor",
]


def __getattr__(name: str):
    if name == "FaultyStore":
        from repro.faults.store import FaultyStore

        return FaultyStore
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
