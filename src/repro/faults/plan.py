"""Deterministic fault plans and the retry policy they are survived with.

A :class:`FaultPlan` is a *seeded, declarative* description of the chaos
a campaign should be subjected to: worker crashes (``SIGKILL`` to the
worker's own pid), stalls, injected task exceptions, delays and
store-write failures.  Every decision is a pure function of the plan's
seed and the scenario's :meth:`~repro.campaign.spec.ScenarioSpec.derived_seed`,
so a chaos run is **reproducible** — the same plan over the same grid
injects the same faults whatever the backend, chunking or worker
placement, exactly the discipline the campaign engine already applies to
scheduler RNG streams.

Fault channels
--------------

* ``crash`` — the worker process SIGKILLs itself before executing the
  scenario.  A worker-level fault: in-process backends (and the pool's
  in-process fallback) skip it, because there is no worker to kill.
* ``hang`` — the worker stalls for :attr:`FaultPlan.hang_seconds`
  before executing the scenario (long enough to trip the supervisor's
  per-task deadline).  Worker-level, like ``crash``.
* ``raise`` — the task raises :class:`InjectedFaultError` *outside* the
  scenario execution, simulating infrastructure failure (the in-scenario
  exception path is already folded into ``"error"`` outcomes by
  :func:`~repro.campaign.runner.run_scenario`).  Applies on every
  backend.
* ``delay`` — the task sleeps :attr:`FaultPlan.delay_seconds` before the
  scenario; a benign perturbation of timing, never of outcomes.
* ``poison`` — like ``raise`` but **persistent**: it fires on every
  attempt, which is what drives the supervisor through retry →
  bisection → quarantine.
* store writes — consulted by :class:`~repro.faults.store.FaultyStore`,
  keyed off the fingerprint digest instead of the spec.

Transient faults (everything except ``poison``) fire only while the
task's attempt number is ``<= fault_attempts`` (default 1): the first
attempt fails, the retry succeeds, and a quarantine-free plan therefore
perturbs *scheduling* but never *outcomes* — the headline equality
invariant the chaos suite pins.
"""

from __future__ import annotations

import hashlib
import os
import signal
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

from repro.exceptions import ConfigurationError

__all__ = [
    "FAULT_KINDS",
    "FaultAction",
    "FaultPlan",
    "FaultStats",
    "InjectedFaultError",
    "RetryPolicy",
]

#: The injectable fault kinds, in decision-priority order.
FAULT_KINDS = ("poison", "crash", "hang", "raise", "delay")

#: Rate channels also include store writes (not a task fault kind).
_RATE_FIELDS = {
    "crash": "crash_rate",
    "hang": "hang_rate",
    "raise": "raise_rate",
    "delay": "delay_rate",
    "poison": "poison_rate",
    "store": "store_failure_rate",
}


class InjectedFaultError(RuntimeError):
    """An injected infrastructure fault (picklable across the pool)."""


@dataclass(frozen=True)
class FaultAction:
    """One planned fault: what to do, for how long, how stubbornly."""

    kind: str
    seconds: float = 0.0
    persistent: bool = False


@dataclass(frozen=True)
class RetryPolicy:
    """How the supervisor survives failing, hanging and dying tasks.

    Attributes
    ----------
    max_attempts:
        Attempts per task (chunk) before it is bisected — and, at single-
        spec granularity, before the spec is quarantined.
    backoff_seconds:
        Base delay before a retry; attempt ``a`` waits
        ``backoff_seconds * 2**(a - 1)``.
    task_timeout_seconds:
        Per-task deadline.  A task with no result by its deadline is
        presumed lost (worker dead or wedged) and re-queued; a late
        result is still accepted and deduplicated.  This is what makes
        every wait in the dispatch loop bounded.
    death_grace_seconds:
        When a worker death is detected, in-flight deadlines are
        tightened to ``now + death_grace_seconds`` — the lost task is
        re-queued after a short grace instead of a full timeout.
    wake_seconds:
        The supervisor's tick: how long one ``done.get`` may block
        before liveness checks run again.
    teardown_grace_seconds:
        How long teardown waits for workers to exit voluntarily before
        terminating them (hung workers are killed, never waited out).
    """

    max_attempts: int = 3
    backoff_seconds: float = 0.05
    task_timeout_seconds: float = 300.0
    death_grace_seconds: float = 2.0
    wake_seconds: float = 0.1
    teardown_grace_seconds: float = 5.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        for name in ("backoff_seconds", "task_timeout_seconds",
                     "death_grace_seconds", "wake_seconds",
                     "teardown_grace_seconds"):
            value = getattr(self, name)
            if value <= 0 and name != "backoff_seconds":
                raise ConfigurationError(f"{name} must be > 0, got {value}")
            if value < 0:
                raise ConfigurationError(f"{name} must be >= 0, got {value}")

    def backoff_for(self, attempt: int) -> float:
        """Delay before re-submitting attempt ``attempt + 1``."""
        return self.backoff_seconds * (2 ** max(0, attempt - 1))


@dataclass
class FaultStats:
    """What the supervisor survived during one campaign run.

    Plain mutable counters, attached to
    :class:`~repro.campaign.runner.CampaignResult` (excluded from
    equality — chaos is infrastructure, outcomes are the contract) and
    surfaced through the journal's campaign-finish stats and the
    telemetry counters of the same names.
    """

    worker_deaths: int = 0
    task_retries: int = 0
    task_timeouts: int = 0
    bisections: int = 0
    quarantined: int = 0
    pool_failures: int = 0

    def any(self) -> bool:
        return any(self.as_dict().values())

    def as_dict(self) -> Dict[str, int]:
        return {
            "worker_deaths": self.worker_deaths,
            "task_retries": self.task_retries,
            "task_timeouts": self.task_timeouts,
            "bisections": self.bisections,
            "quarantined": self.quarantined,
            "pool_failures": self.pool_failures,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FaultStats":
        stats = cls()
        for name in stats.as_dict():
            value = payload.get(name, 0)
            if isinstance(value, int) and not isinstance(value, bool):
                setattr(stats, name, value)
        return stats


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, picklable chaos schedule over a campaign.

    Rates are probabilities in ``[0, 1]`` evaluated against a
    deterministic per-scenario roll (sha256 over the plan seed, the
    channel name and the scenario's derived seed); the ``*_labels``
    tuples target specific scenarios by their
    :meth:`~repro.campaign.spec.ScenarioSpec.label` exactly, which is
    what tests use to poison one known spec.  ``fault_attempts`` gates
    the transient channels: a fault fires only while the task attempt is
    ``<= fault_attempts``, so default plans are recoverable by a single
    retry.  ``poison`` ignores the gate by design.
    """

    seed: int = 0
    crash_rate: float = 0.0
    hang_rate: float = 0.0
    raise_rate: float = 0.0
    delay_rate: float = 0.0
    poison_rate: float = 0.0
    store_failure_rate: float = 0.0
    hang_seconds: float = 30.0
    delay_seconds: float = 0.01
    fault_attempts: int = 1
    crash_labels: Tuple[str, ...] = ()
    hang_labels: Tuple[str, ...] = ()
    raise_labels: Tuple[str, ...] = ()
    poison_labels: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        for name in _RATE_FIELDS.values():
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(
                    f"{name} must be within [0, 1], got {rate}"
                )
        if self.hang_seconds <= 0 or self.delay_seconds <= 0:
            raise ConfigurationError(
                "hang_seconds and delay_seconds must be > 0"
            )
        if self.fault_attempts < 1:
            raise ConfigurationError(
                f"fault_attempts must be >= 1, got {self.fault_attempts}"
            )

    # -- decisions ---------------------------------------------------------

    def _roll(self, ident: object, channel: str) -> float:
        blob = f"faults:{self.seed}:{channel}:{ident}".encode()
        return int.from_bytes(hashlib.sha256(blob).digest()[:8], "big") / 2.0 ** 64

    def _hit(self, ident: object, channel: str) -> bool:
        rate = getattr(self, _RATE_FIELDS[channel])
        return rate > 0.0 and self._roll(ident, channel) < rate

    def decide(self, spec, attempt: int = 1) -> Optional[FaultAction]:
        """The fault (if any) planned for this scenario at this attempt.

        Pure in ``(plan, spec identity, attempt)``: tests can pre-compute
        exactly which scenarios of a grid will crash, hang or raise.
        """
        label = spec.label()
        ident = spec.derived_seed()
        if label in self.poison_labels or self._hit(ident, "poison"):
            return FaultAction("raise", persistent=True)
        if attempt > self.fault_attempts:
            return None
        if label in self.crash_labels or self._hit(ident, "crash"):
            return FaultAction("crash")
        if label in self.hang_labels or self._hit(ident, "hang"):
            return FaultAction("hang", seconds=self.hang_seconds)
        if label in self.raise_labels or self._hit(ident, "raise"):
            return FaultAction("raise")
        if self._hit(ident, "delay"):
            return FaultAction("delay", seconds=self.delay_seconds)
        return None

    def store_write_fails(self, digest: str, attempt: int = 1) -> bool:
        """Whether this store write is planned to fail (transient)."""
        if attempt > self.fault_attempts:
            return False
        return self._hit(str(digest), "store")

    # -- execution ---------------------------------------------------------

    def perform(self, spec, attempt: int, *, in_worker: bool,
                before_crash: Optional[Callable[[], None]] = None) -> None:
        """Execute the planned fault for ``spec`` at this attempt, if any.

        ``crash`` and ``hang`` are worker-level faults: outside a pool
        worker (serial/chunked backends, the pool's in-process fallback)
        they are skipped, because killing or stalling the calling
        process would take the campaign down with it — the very thing
        the supervisor exists to survive.  ``before_crash`` runs right
        before an injected SIGKILL (the runner uses it to flush the
        worker's event-queue feeder so the kill cannot corrupt the
        shared pipe).
        """
        action = self.decide(spec, attempt)
        if action is None:
            return
        if action.kind == "crash":
            if in_worker:
                if before_crash is not None:
                    before_crash()
                os.kill(os.getpid(), signal.SIGKILL)
            return
        if action.kind == "hang":
            if in_worker:
                time.sleep(action.seconds)
            return
        if action.kind == "delay":
            time.sleep(action.seconds)
            return
        raise InjectedFaultError(
            f"injected {'poison' if action.persistent else 'transient'} fault "
            f"for {spec.label()} (attempt {attempt})"
        )
