"""Connected-component algorithms for :class:`repro.graphs.digraph.DiGraph`.

Provides the three component notions the paper's Section VI needs:

* *strongly connected components* (Tarjan's algorithm, iterative so that
  large graphs do not hit the Python recursion limit),
* *weakly connected components* (connected components of the underlying
  undirected graph), and
* the *condensation*: the DAG obtained by contracting every strongly
  connected component to a single vertex, which is where the paper's
  notion of a *source component* lives.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Tuple

from repro.graphs.digraph import DiGraph

__all__ = [
    "strongly_connected_components",
    "weakly_connected_components",
    "condensation",
]

Node = Hashable


def strongly_connected_components(graph: DiGraph) -> Tuple[frozenset, ...]:
    """Return the strongly connected components of ``graph``.

    Uses an iterative version of Tarjan's algorithm.  Components are
    returned as ``frozenset`` objects; the order of components follows the
    completion order of Tarjan's algorithm (reverse topological order of
    the condensation), which downstream code must not rely on beyond
    determinism for a fixed input.
    """
    index_counter = 0
    index: Dict[Node, int] = {}
    lowlink: Dict[Node, int] = {}
    on_stack: Dict[Node, bool] = {}
    stack: List[Node] = []
    components: List[frozenset] = []

    for root in graph.nodes:
        if root in index:
            continue
        # Each work item is (node, iterator over successors).
        work: List[Tuple[Node, int]] = [(root, 0)]
        while work:
            node, succ_pos = work[-1]
            if succ_pos == 0:
                index[node] = index_counter
                lowlink[node] = index_counter
                index_counter += 1
                stack.append(node)
                on_stack[node] = True
            recursed = False
            successors = graph.successors(node)
            for pos in range(succ_pos, len(successors)):
                succ = successors[pos]
                if succ not in index:
                    work[-1] = (node, pos + 1)
                    work.append((succ, 0))
                    recursed = True
                    break
                if on_stack.get(succ, False):
                    lowlink[node] = min(lowlink[node], index[succ])
            if recursed:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component: List[Node] = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    component.append(member)
                    if member == node:
                        break
                components.append(frozenset(component))
    return tuple(components)


def weakly_connected_components(graph: DiGraph) -> Tuple[frozenset, ...]:
    """Return the weakly connected components of ``graph``.

    A weakly connected component is a maximal set of nodes that are mutually
    reachable when every edge is treated as undirected.
    """
    seen: set = set()
    components: List[frozenset] = []
    for root in graph.nodes:
        if root in seen:
            continue
        frontier = [root]
        component = {root}
        seen.add(root)
        while frontier:
            node = frontier.pop()
            for neighbour in graph.undirected_neighbours(node):
                if neighbour not in seen:
                    seen.add(neighbour)
                    component.add(neighbour)
                    frontier.append(neighbour)
        components.append(frozenset(component))
    return tuple(components)


def condensation(graph: DiGraph) -> Tuple[DiGraph, Dict[Node, frozenset]]:
    """Contract every strongly connected component into a single vertex.

    Returns a pair ``(dag, membership)`` where ``dag`` is a
    :class:`~repro.graphs.digraph.DiGraph` whose nodes are the strongly
    connected components (as ``frozenset`` objects) and ``membership`` maps
    every original node to its component.  The result is a DAG: the paper's
    *source components* are exactly the nodes of ``dag`` with in-degree 0.
    """
    sccs = strongly_connected_components(graph)
    membership: Dict[Node, frozenset] = {}
    for component in sccs:
        for node in component:
            membership[node] = component
    dag = DiGraph(nodes=sccs)
    for u, v in graph.edges:
        cu, cv = membership[u], membership[v]
        if cu is not cv and cu != cv:
            dag.add_edge(cu, cv)
    return dag, membership
