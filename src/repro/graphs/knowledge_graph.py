"""The stage-1 knowledge graph ``G`` of the Section VI algorithm.

In the two-stage protocol of Fischer, Lynch and Paterson — and in the
paper's generalisation to k-set agreement — every process broadcasts its
identifier in the first stage and then waits for ``L - 1`` such messages.
The resulting "who heard from whom" relation is a directed graph ``G``
with an edge ``u -> w`` whenever ``w`` received the stage-1 message of
``u``.  In the second stage every process broadcasts its proposal together
with the list of the ``L - 1`` processes it heard from, so processes learn
(parts of) ``G`` transitively.

:class:`KnowledgeGraph` is the per-process view of ``G``: it accumulates
"``w`` heard from ``{u_1, ...}``" facts, tracks which processes' in-edge
lists are still missing, and — once the transitive closure of required
information is complete — exposes the source component that reaches the
owning process, from which the decision value is derived.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Set, Tuple

from repro.graphs.digraph import DiGraph
from repro.types import ProcessId, Value

__all__ = ["KnowledgeGraph", "decide_from_reports"]


def _required_closure(
    owner: ProcessId, heard_from: Mapping[ProcessId, Iterable[ProcessId]]
) -> Set[ProcessId]:
    """The in-edge-transitive closure of ``owner`` over ``heard_from``."""
    required: Set[ProcessId] = {owner}
    frontier = [owner]
    while frontier:
        current = frontier.pop()
        for pred in heard_from.get(current, ()):
            if pred not in required:
                required.add(pred)
                frontier.append(pred)
    return required


def _source_components(
    required: Set[ProcessId],
    heard_from: Mapping[ProcessId, Iterable[ProcessId]],
) -> list:
    """Source SCCs of the graph induced on ``required`` by the in-edge lists.

    ``heard_from[w]`` lists the tails of ``w``'s in-edges (``u -> w``).
    Tarjan's algorithm is direction-invariant for the *sets* of strongly
    connected components, so the traversal follows the in-edge lists
    directly; the source test afterwards uses the true edge direction: a
    component is a source iff no member has an in-edge from outside it.
    Runs iteratively (no recursion-depth limit) and allocates nothing
    proportional to the edge count.
    """
    index: Dict[ProcessId, int] = {}
    low: Dict[ProcessId, int] = {}
    on_stack: Set[ProcessId] = set()
    stack: list = []
    components: list = []
    counter = 0
    for root in required:
        if root in index:
            continue
        index[root] = low[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        work = [(root, iter(heard_from.get(root, ())))]
        while work:
            node, neighbours = work[-1]
            advanced = False
            for succ in neighbours:
                if succ not in required:
                    continue  # pragma: no cover - required is pred-closed
                if succ not in index:
                    index[succ] = low[succ] = counter
                    counter += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(heard_from.get(succ, ()))))
                    advanced = True
                    break
                if succ in on_stack and index[succ] < low[node]:
                    low[node] = index[succ]
            if not advanced:
                work.pop()
                if work and low[node] < low[work[-1][0]]:
                    low[work[-1][0]] = low[node]
                if low[node] == index[node]:
                    component: Set[ProcessId] = set()
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.add(member)
                        if member == node:
                            break
                    components.append(component)
    sources = []
    for component in components:
        is_source = True
        for node in component:
            for pred in heard_from.get(node, ()):
                if pred in required and pred not in component:
                    is_source = False
                    break
            if not is_source:
                break
        if is_source:
            sources.append(frozenset(component))
    return sources


def decide_from_reports(
    owner: ProcessId,
    heard_from: Mapping[ProcessId, Iterable[ProcessId]],
    values: Mapping[ProcessId, Value],
) -> Optional[Value]:
    """The Section VI decision value straight from raw in-edge lists.

    Equivalent to loading the reports into a :class:`KnowledgeGraph` and
    calling :meth:`KnowledgeGraph.decision_value`, but without allocating
    the graph or coercing the predecessor lists into frozensets — this is
    the per-step decision attempt of the two-stage protocol, the hottest
    computation of a Section VI run.  Returns ``None`` while the owner's
    transitive closure is incomplete.
    """
    if owner not in heard_from:
        return None
    required = _required_closure(owner, heard_from)
    for process in required:
        if process not in heard_from:
            return None
    candidates = _source_components(required, heard_from)
    if not candidates:  # pragma: no cover - owner always reaches itself
        return None
    representative = min(min(candidates, key=min))
    if representative not in values:  # pragma: no cover - defensive
        return None
    return values[representative]


@dataclass
class KnowledgeGraph:
    """A process-local, incrementally learned view of the stage-1 graph.

    Parameters
    ----------
    owner:
        The process building the view (decision rules are relative to it).
    """

    owner: ProcessId
    #: in-edge lists learned so far: ``w -> set of u with edge u -> w``.
    heard_from: Dict[ProcessId, FrozenSet[ProcessId]] = field(default_factory=dict)
    #: proposal values learned so far (stage-2 messages carry them).
    values: Dict[ProcessId, Value] = field(default_factory=dict)

    def record(self, process: ProcessId, predecessors: Iterable[ProcessId], value: Value) -> None:
        """Record that ``process`` heard from ``predecessors`` and proposed ``value``.

        Recording the same process twice with different information raises
        :class:`ValueError` — in the initial-crash model the stage-1 receive
        set of a process is fixed once it enters stage 2, so conflicting
        reports indicate a protocol bug.
        """
        preds = frozenset(predecessors)
        if any(type(p) is not int for p in preds):
            preds = frozenset(int(p) for p in preds)
        if process in self.heard_from and self.heard_from[process] != preds:
            raise ValueError(
                f"conflicting predecessor report for p{process}: "
                f"{sorted(self.heard_from[process])} vs {sorted(preds)}"
            )
        self.heard_from[process] = preds
        self.values[process] = value

    @property
    def known_processes(self) -> FrozenSet[ProcessId]:
        """Processes whose in-edge list (and value) has been learned."""
        return frozenset(self.heard_from)

    def required_processes(self) -> FrozenSet[ProcessId]:
        """The transitive closure of processes whose reports are required.

        Starting from the owner, a process needs the reports of everyone it
        heard from, of everyone those processes heard from, and so on.
        Unknown processes (mentioned in some list but not yet reported) are
        included in the result; completeness is checked separately.
        """
        return frozenset(_required_closure(self.owner, self.heard_from))

    def missing_processes(self) -> FrozenSet[ProcessId]:
        """Required processes whose report has not arrived yet."""
        return frozenset(p for p in self.required_processes() if p not in self.heard_from)

    def is_complete(self) -> bool:
        """``True`` when every transitively required report has arrived."""
        return not self.missing_processes()

    def to_digraph(self) -> DiGraph:
        """Materialise the currently known part of ``G`` as a digraph.

        Only processes with a known in-edge list become nodes; edges from
        not-yet-reported predecessors are included (their endpoint node is
        created implicitly), mirroring the partial knowledge a process has.
        """
        graph = DiGraph()
        for process, predecessors in self.heard_from.items():
            graph.add_node(process)
            for pred in predecessors:
                graph.add_edge(pred, process)
        return graph

    def decision_component(self) -> Optional[FrozenSet[ProcessId]]:
        """Return the source component that determines the owner's decision.

        Requires :meth:`is_complete`; returns ``None`` otherwise.  When the
        view is complete, the induced graph on the required processes
        contains every in-edge of every required process, so its source
        components are genuine source components of the global graph ``G``.
        Among the source components that reach the owner, the one whose
        minimum process identifier is smallest is returned, which makes the
        decision rule deterministic and identical at every process that
        computes it on the same graph.

        The components are computed directly on the in-edge lists: the
        required set is the in-edge-transitive closure of the owner, so
        *every* node of the induced graph reaches the owner and the old
        ``DiGraph``-materialise/induce/condense pipeline (three O(n^2)
        allocations per deciding process — the dominant cost of a
        Section VI run) reduces to one strongly-connected-components pass.
        """
        required = _required_closure(self.owner, self.heard_from)
        if any(p not in self.heard_from for p in required):
            return None  # incomplete: some required report is still missing
        candidates = _source_components(required, self.heard_from)
        if not candidates:  # pragma: no cover - owner always reaches itself
            return None
        return min(candidates, key=min)

    def decision_value(self) -> Optional[Value]:
        """The Section VI decision value, or ``None`` while incomplete.

        The deterministic rule from the paper: take the value proposed by
        the process with the minimal identifier in the decision source
        component.
        """
        component = self.decision_component()
        if component is None:
            return None
        representative = min(component)
        if representative not in self.values:  # pragma: no cover - defensive
            return None
        return self.values[representative]

    def summary(self) -> Mapping[str, object]:
        """A small diagnostic mapping used by traces and examples."""
        return {
            "owner": self.owner,
            "known": tuple(sorted(self.heard_from)),
            "missing": tuple(sorted(self.missing_processes())),
            "complete": self.is_complete(),
        }
