"""The stage-1 knowledge graph ``G`` of the Section VI algorithm.

In the two-stage protocol of Fischer, Lynch and Paterson — and in the
paper's generalisation to k-set agreement — every process broadcasts its
identifier in the first stage and then waits for ``L - 1`` such messages.
The resulting "who heard from whom" relation is a directed graph ``G``
with an edge ``u -> w`` whenever ``w`` received the stage-1 message of
``u``.  In the second stage every process broadcasts its proposal together
with the list of the ``L - 1`` processes it heard from, so processes learn
(parts of) ``G`` transitively.

:class:`KnowledgeGraph` is the per-process view of ``G``: it accumulates
"``w`` heard from ``{u_1, ...}``" facts, tracks which processes' in-edge
lists are still missing, and — once the transitive closure of required
information is complete — exposes the source component that reaches the
owning process, from which the decision value is derived.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Set, Tuple

from repro.graphs.digraph import DiGraph
from repro.graphs.source_components import reachable_source_components
from repro.types import ProcessId, Value

__all__ = ["KnowledgeGraph"]


@dataclass
class KnowledgeGraph:
    """A process-local, incrementally learned view of the stage-1 graph.

    Parameters
    ----------
    owner:
        The process building the view (decision rules are relative to it).
    """

    owner: ProcessId
    #: in-edge lists learned so far: ``w -> set of u with edge u -> w``.
    heard_from: Dict[ProcessId, FrozenSet[ProcessId]] = field(default_factory=dict)
    #: proposal values learned so far (stage-2 messages carry them).
    values: Dict[ProcessId, Value] = field(default_factory=dict)

    def record(self, process: ProcessId, predecessors: Iterable[ProcessId], value: Value) -> None:
        """Record that ``process`` heard from ``predecessors`` and proposed ``value``.

        Recording the same process twice with different information raises
        :class:`ValueError` — in the initial-crash model the stage-1 receive
        set of a process is fixed once it enters stage 2, so conflicting
        reports indicate a protocol bug.
        """
        preds = frozenset(int(p) for p in predecessors)
        if process in self.heard_from and self.heard_from[process] != preds:
            raise ValueError(
                f"conflicting predecessor report for p{process}: "
                f"{sorted(self.heard_from[process])} vs {sorted(preds)}"
            )
        self.heard_from[process] = preds
        self.values[process] = value

    @property
    def known_processes(self) -> FrozenSet[ProcessId]:
        """Processes whose in-edge list (and value) has been learned."""
        return frozenset(self.heard_from)

    def required_processes(self) -> FrozenSet[ProcessId]:
        """The transitive closure of processes whose reports are required.

        Starting from the owner, a process needs the reports of everyone it
        heard from, of everyone those processes heard from, and so on.
        Unknown processes (mentioned in some list but not yet reported) are
        included in the result; completeness is checked separately.
        """
        required: Set[ProcessId] = {self.owner}
        frontier = [self.owner]
        while frontier:
            current = frontier.pop()
            for pred in self.heard_from.get(current, frozenset()):
                if pred not in required:
                    required.add(pred)
                    frontier.append(pred)
        return frozenset(required)

    def missing_processes(self) -> FrozenSet[ProcessId]:
        """Required processes whose report has not arrived yet."""
        return frozenset(p for p in self.required_processes() if p not in self.heard_from)

    def is_complete(self) -> bool:
        """``True`` when every transitively required report has arrived."""
        return not self.missing_processes()

    def to_digraph(self) -> DiGraph:
        """Materialise the currently known part of ``G`` as a digraph.

        Only processes with a known in-edge list become nodes; edges from
        not-yet-reported predecessors are included (their endpoint node is
        created implicitly), mirroring the partial knowledge a process has.
        """
        graph = DiGraph()
        for process, predecessors in self.heard_from.items():
            graph.add_node(process)
            for pred in predecessors:
                graph.add_edge(pred, process)
        return graph

    def decision_component(self) -> Optional[FrozenSet[ProcessId]]:
        """Return the source component that determines the owner's decision.

        Requires :meth:`is_complete`; returns ``None`` otherwise.  When the
        view is complete, the induced graph on the required processes
        contains every in-edge of every required process, so its source
        components are genuine source components of the global graph ``G``.
        Among the source components that reach the owner, the one whose
        minimum process identifier is smallest is returned, which makes the
        decision rule deterministic and identical at every process that
        computes it on the same graph.
        """
        if not self.is_complete():
            return None
        required = self.required_processes()
        graph = self.to_digraph().subgraph(required)
        candidates = reachable_source_components(graph, self.owner)
        if not candidates:  # pragma: no cover - owner always reaches itself
            return None
        chosen = min(candidates, key=lambda comp: min(comp))
        return frozenset(chosen)

    def decision_value(self) -> Optional[Value]:
        """The Section VI decision value, or ``None`` while incomplete.

        The deterministic rule from the paper: take the value proposed by
        the process with the minimal identifier in the decision source
        component.
        """
        component = self.decision_component()
        if component is None:
            return None
        representative = min(component)
        if representative not in self.values:  # pragma: no cover - defensive
            return None
        return self.values[representative]

    def summary(self) -> Mapping[str, object]:
        """A small diagnostic mapping used by traces and examples."""
        return {
            "owner": self.owner,
            "known": tuple(sorted(self.heard_from)),
            "missing": tuple(sorted(self.missing_processes())),
            "complete": self.is_complete(),
        }
