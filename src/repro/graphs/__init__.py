"""Directed-graph substrate used by the Section VI algorithm.

The generalisation of the FLP initial-crash consensus protocol to k-set
agreement rests on a purely combinatorial fact about directed graphs whose
vertices all have in-degree at least ``delta`` (Lemma 6 and Lemma 7 of the
paper): every weakly connected component contains a *source component* —
a strongly connected component with no incoming edges in the condensation
DAG — of size at least ``delta + 1``, and consequently a graph on ``n``
vertices has at most ``floor(n / (delta + 1))`` source components.

This subpackage provides:

* :class:`repro.graphs.digraph.DiGraph` — a minimal, dependency-free
  directed graph,
* :mod:`repro.graphs.components` — Tarjan strongly connected components,
  weakly connected components and the condensation DAG,
* :mod:`repro.graphs.source_components` — source components, initial
  cliques and the Lemma 6 / Lemma 7 bounds,
* :mod:`repro.graphs.knowledge_graph` — construction of the stage-1
  "who heard from whom" graph ``G`` from the messages of a run.
"""

from repro.graphs.digraph import DiGraph
from repro.graphs.components import (
    strongly_connected_components,
    weakly_connected_components,
    condensation,
)
from repro.graphs.source_components import (
    source_components,
    source_component_of,
    min_in_degree,
    lemma6_bound,
    verify_lemma6,
    verify_lemma7,
)
from repro.graphs.knowledge_graph import KnowledgeGraph

__all__ = [
    "DiGraph",
    "strongly_connected_components",
    "weakly_connected_components",
    "condensation",
    "source_components",
    "source_component_of",
    "min_in_degree",
    "lemma6_bound",
    "verify_lemma6",
    "verify_lemma7",
    "KnowledgeGraph",
]
