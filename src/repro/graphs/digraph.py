"""A minimal directed simple graph.

The library deliberately ships its own tiny digraph implementation instead
of depending on :mod:`networkx` for its core code path: the Section VI
algorithm runs *inside* every simulated process and constructs a fresh
knowledge graph per decision, so the data structure should be cheap,
deterministic and free of optional dependencies.  (The benchmark suite
cross-checks the component algorithms against :mod:`networkx` where that
package is available.)
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, Set, Tuple

__all__ = ["DiGraph"]

Node = Hashable


class DiGraph:
    """A directed simple graph (no parallel edges, self-loops allowed).

    Nodes may be any hashable objects.  Iteration orders are deterministic:
    nodes iterate in insertion order, neighbours in insertion order of the
    corresponding ``add_edge`` calls.
    """

    def __init__(self, edges: Iterable[Tuple[Node, Node]] = (), nodes: Iterable[Node] = ()):
        self._succ: Dict[Node, Dict[Node, None]] = {}
        self._pred: Dict[Node, Dict[Node, None]] = {}
        for node in nodes:
            self.add_node(node)
        for u, v in edges:
            self.add_edge(u, v)

    # -- construction -------------------------------------------------

    def add_node(self, node: Node) -> None:
        """Add ``node`` to the graph (no-op when already present)."""
        if node not in self._succ:
            self._succ[node] = {}
            self._pred[node] = {}

    def add_edge(self, u: Node, v: Node) -> None:
        """Add the directed edge ``u -> v``, creating missing endpoints."""
        self.add_node(u)
        self.add_node(v)
        self._succ[u][v] = None
        self._pred[v][u] = None

    def remove_node(self, node: Node) -> None:
        """Remove ``node`` and all incident edges.

        Raises :class:`KeyError` when the node is not present.
        """
        if node not in self._succ:
            raise KeyError(node)
        for v in list(self._succ[node]):
            del self._pred[v][node]
        for u in list(self._pred[node]):
            del self._succ[u][node]
        del self._succ[node]
        del self._pred[node]

    # -- queries ------------------------------------------------------

    def __contains__(self, node: object) -> bool:
        return node in self._succ

    def __len__(self) -> int:
        return len(self._succ)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._succ)

    @property
    def nodes(self) -> Tuple[Node, ...]:
        """All nodes, in insertion order."""
        return tuple(self._succ)

    @property
    def edges(self) -> Tuple[Tuple[Node, Node], ...]:
        """All directed edges as ``(u, v)`` pairs."""
        return tuple((u, v) for u, targets in self._succ.items() for v in targets)

    def number_of_edges(self) -> int:
        """Total number of directed edges."""
        return sum(len(t) for t in self._succ.values())

    def successors(self, node: Node) -> Tuple[Node, ...]:
        """Out-neighbours of ``node``."""
        return tuple(self._succ[node])

    def predecessors(self, node: Node) -> Tuple[Node, ...]:
        """In-neighbours of ``node``."""
        return tuple(self._pred[node])

    def has_edge(self, u: Node, v: Node) -> bool:
        """Return ``True`` when the edge ``u -> v`` exists."""
        return u in self._succ and v in self._succ[u]

    def in_degree(self, node: Node) -> int:
        """Number of incoming edges of ``node``."""
        return len(self._pred[node])

    def out_degree(self, node: Node) -> int:
        """Number of outgoing edges of ``node``."""
        return len(self._succ[node])

    # -- derived graphs -----------------------------------------------

    def subgraph(self, nodes: Iterable[Node]) -> "DiGraph":
        """Return the subgraph induced by ``nodes`` (unknown nodes ignored)."""
        keep: Set[Node] = {n for n in nodes if n in self._succ}
        sub = DiGraph(nodes=sorted(keep, key=self._node_sort_key))
        for u in keep:
            for v in self._succ[u]:
                if v in keep:
                    sub.add_edge(u, v)
        return sub

    def reverse(self) -> "DiGraph":
        """Return a new graph with every edge direction flipped."""
        rev = DiGraph(nodes=self.nodes)
        for u, v in self.edges:
            rev.add_edge(v, u)
        return rev

    def copy(self) -> "DiGraph":
        """Return a shallow copy of the graph."""
        return DiGraph(edges=self.edges, nodes=self.nodes)

    def undirected_neighbours(self, node: Node) -> Tuple[Node, ...]:
        """Neighbours ignoring edge direction (used for weak connectivity)."""
        combined: Dict[Node, None] = dict(self._succ[node])
        combined.update(self._pred[node])
        return tuple(combined)

    # -- misc ----------------------------------------------------------

    @staticmethod
    def _node_sort_key(node: Node):
        return (str(type(node)), str(node))

    def __repr__(self) -> str:
        return f"DiGraph(|V|={len(self)}, |E|={self.number_of_edges()})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DiGraph):
            return NotImplemented
        return set(self.nodes) == set(other.nodes) and set(self.edges) == set(other.edges)

    def __hash__(self):  # pragma: no cover - graphs are mutable
        raise TypeError("DiGraph objects are mutable and unhashable")
