"""Source components and the combinatorial lemmas of Section VI.

The paper's possibility result (Theorem 8) rests on two graph lemmas:

* **Lemma 6.**  Every finite directed simple graph in which every vertex
  has in-degree at least ``delta > 0`` has a source component of size at
  least ``delta + 1``.
* **Lemma 7.**  In every weakly connected component of such a graph there
  is at least one source component of size at least ``delta + 1``.

A *source component* is a strongly connected component whose vertex in the
condensation DAG has in-degree 0.  Because source components are disjoint
and each has size at least ``delta + 1``, a graph on ``n`` vertices has at
most ``floor(n / (delta + 1))`` of them — which is exactly why waiting for
``L - 1`` messages in the first stage of the Section VI algorithm bounds
the number of distinct decision values by ``floor(n / L)``.

This module computes source components, checks the two lemmas on concrete
graphs (used by the property-based tests and by benchmark E3), and exposes
the counting bound.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional, Tuple

from repro.graphs.components import condensation, weakly_connected_components
from repro.graphs.digraph import DiGraph

__all__ = [
    "source_components",
    "source_component_of",
    "reachable_source_components",
    "min_in_degree",
    "lemma6_bound",
    "verify_lemma6",
    "verify_lemma7",
    "initial_cliques",
]

Node = Hashable


def source_components(graph: DiGraph) -> Tuple[frozenset, ...]:
    """Return all source components of ``graph``.

    A source component is a strongly connected component with no incoming
    edge from any other component.  The empty graph has no source
    components.
    """
    if len(graph) == 0:
        return ()
    dag, _membership = condensation(graph)
    return tuple(component for component in dag.nodes if dag.in_degree(component) == 0)


def source_component_of(graph: DiGraph, node: Node) -> Optional[frozenset]:
    """Return one source component from which ``node`` is reachable.

    Every node of a finite digraph is reachable from at least one source
    component (walk backwards until the walk closes a cycle inside a
    component with no external predecessors).  When several source
    components reach ``node`` the lexicographically smallest one (by sorted
    string representation of its members) is returned, which makes the
    Section VI decision rule deterministic.  Returns ``None`` when the node
    is not in the graph.
    """
    if node not in graph:
        return None
    candidates = reachable_source_components(graph, node)
    if not candidates:  # pragma: no cover - impossible for finite graphs
        return None
    return min(candidates, key=lambda comp: sorted(str(m) for m in comp))


def reachable_source_components(graph: DiGraph, node: Node) -> Tuple[frozenset, ...]:
    """Return every source component that can reach ``node``.

    Reachability is taken along directed edges from the source component to
    ``node``.  Used by the Section VI algorithm: a process decides on the
    value of (the minimum-identifier member of) a source component that
    reaches it in the knowledge graph.
    """
    if node not in graph:
        return ()
    dag, membership = condensation(graph)
    target = membership[node]
    reverse = dag.reverse()
    # Which condensation vertices can reach ``target``?  Equivalently,
    # which vertices are reachable from ``target`` in the reversed DAG.
    seen = {target}
    frontier = [target]
    while frontier:
        current = frontier.pop()
        for pred in reverse.successors(current):
            if pred not in seen:
                seen.add(pred)
                frontier.append(pred)
    return tuple(comp for comp in dag.nodes if comp in seen and dag.in_degree(comp) == 0)


def min_in_degree(graph: DiGraph) -> int:
    """Return the minimum in-degree over all vertices (0 for empty graphs)."""
    if len(graph) == 0:
        return 0
    return min(graph.in_degree(node) for node in graph.nodes)


def lemma6_bound(n: int, delta: int) -> int:
    """Maximum possible number of source components by Lemma 6.

    A graph on ``n`` vertices whose vertices all have in-degree at least
    ``delta`` has source components of size at least ``delta + 1`` each;
    since they are disjoint there are at most ``floor(n / (delta + 1))``.

    >>> lemma6_bound(10, 4)
    2
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    if delta < 0:
        raise ValueError("delta must be non-negative")
    return n // (delta + 1)


def verify_lemma6(graph: DiGraph) -> Dict[str, object]:
    """Check Lemma 6 on a concrete graph and return the evidence.

    Returns a dictionary with the minimum in-degree ``delta``, the source
    components found, the largest source-component size and the boolean
    ``holds`` stating whether some source component has size at least
    ``delta + 1``.  For graphs with ``delta == 0`` the lemma degenerates
    (every graph has a source component of size >= 1) and ``holds`` is
    still reported.
    """
    delta = min_in_degree(graph)
    sources = source_components(graph)
    largest = max((len(c) for c in sources), default=0)
    count_bound = lemma6_bound(len(graph), delta) if len(graph) else 0
    return {
        "delta": delta,
        "source_components": sources,
        "largest_source_size": largest,
        "holds": (len(graph) == 0) or largest >= delta + 1,
        "count": len(sources),
        "count_bound": count_bound,
        "count_within_bound": (len(graph) == 0) or len(sources) <= max(count_bound, 1),
    }


def verify_lemma7(graph: DiGraph) -> Dict[str, object]:
    """Check Lemma 7: every weakly connected component hosts a large source.

    For each weakly connected component ``W`` of ``graph`` the induced
    subgraph must contain a source component of size at least
    ``delta_W + 1`` where ``delta_W`` is the minimum in-degree *within the
    whole graph* restricted to ``W`` — the paper states the lemma for
    graphs whose global minimum in-degree is ``delta``, and in that setting
    edges never leave a weakly connected component, so the induced subgraph
    retains all in-edges.
    """
    results = []
    holds = True
    for component in weakly_connected_components(graph):
        induced = graph.subgraph(component)
        evidence = verify_lemma6(induced)
        results.append({"component": component, **evidence})
        if not evidence["holds"]:
            holds = False
    return {"holds": holds, "components": tuple(results)}


def initial_cliques(graph: DiGraph) -> Tuple[frozenset, ...]:
    """Return the *initial cliques* of ``graph`` in the sense of FLP.

    Fischer, Lynch and Paterson call a set ``C`` an initial clique when the
    induced subgraph is fully connected (every ordered pair of distinct
    members is an edge) and no member has an incoming edge from outside
    ``C``.  The paper observes that finding the initial clique a process is
    connected to is equivalent to finding its source component; this helper
    returns the source components that additionally satisfy the clique
    condition, which is what the original FLP protocol relies on when a
    majority of processes is correct.
    """
    cliques = []
    for component in source_components(graph):
        members = sorted(component, key=str)
        is_clique = all(
            graph.has_edge(u, v) for u in members for v in members if u != v
        )
        if is_clique:
            cliques.append(component)
    return tuple(cliques)
