"""System models, failure assumptions and model restriction.

A :class:`SystemModel` bundles everything the paper's Section II calls a
"model M = <Pi>": the set of processes, the synchrony/communication
parameters (a :class:`~repro.models.parameters.SystemModelSpec`), the
failure assumption (how many processes may crash and whether crashes are
restricted to initial crashes), and — when the sixth model dimension is
favourable — the failure-detector class processes may query.

Two operations from the paper are first-class here:

* **Restriction** (Section II-B): ``M' = <D>`` keeps the mode of
  computation of ``M`` but runs on a subset ``D`` of the processes.  The
  synchrony assumptions of the restricted model are supplied by the caller
  (the paper stresses that restriction "does not imply anything about the
  synchrony assumptions which hold in M'").
* **Admissibility** checking: given a recorded run, verify the conditions
  the model imposes (crash budget, initial-crash-only restriction,
  eventual delivery to correct processes, fairness of steps).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError, TraceUnavailableError
from repro.models.parameters import SystemModelSpec
from repro.types import ProcessId, validate_process_ids

__all__ = ["FailureAssumption", "SystemModel"]


@dataclass(frozen=True)
class FailureAssumption:
    """How many processes may fail, and how.

    Attributes
    ----------
    max_failures:
        The bound ``f`` on the number of faulty processes.
    initial_only:
        When ``True`` every crash must be an initial crash (the process
        never takes a step) — the Section VI model.
    max_non_initial:
        When not ``None``, at most this many of the ``f`` failures may
        occur after the initial configuration.  Theorem 2 uses
        ``max_non_initial=1`` ("f-1 can fail by crashing initially and only
        one process can crash during the execution").
    """

    max_failures: int
    initial_only: bool = False
    max_non_initial: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_failures < 0:
            raise ConfigurationError(f"max_failures must be >= 0, got {self.max_failures}")
        if self.max_non_initial is not None and self.max_non_initial < 0:
            raise ConfigurationError(
                f"max_non_initial must be >= 0, got {self.max_non_initial}"
            )
        if self.initial_only and self.max_non_initial not in (None, 0):
            raise ConfigurationError(
                "initial_only=True is incompatible with max_non_initial > 0"
            )

    def allows(self, crash_times: Sequence[Tuple[ProcessId, int]]) -> bool:
        """Return ``True`` when the given crash schedule respects the assumption.

        ``crash_times`` lists ``(process, time)`` pairs; time 0 denotes an
        initial crash.
        """
        if len(crash_times) > self.max_failures:
            return False
        non_initial = sum(1 for _pid, t in crash_times if t > 0)
        if self.initial_only and non_initial > 0:
            return False
        if self.max_non_initial is not None and non_initial > self.max_non_initial:
            return False
        return True

    def describe(self) -> str:
        """Human-readable summary used in traces and reports."""
        if self.initial_only:
            return f"up to {self.max_failures} initial crashes"
        if self.max_non_initial is not None:
            return (
                f"up to {self.max_failures} crashes, at most "
                f"{self.max_non_initial} after the initial configuration"
            )
        return f"up to {self.max_failures} crash failures"


@dataclass(frozen=True)
class SystemModel:
    """A system model ``M = <Pi>`` in the sense of Section II.

    Instances are immutable; derived models (restrictions, changed failure
    assumptions) are new objects.
    """

    name: str
    processes: Tuple[ProcessId, ...]
    spec: SystemModelSpec = field(default_factory=SystemModelSpec)
    failures: FailureAssumption = field(default_factory=lambda: FailureAssumption(0))
    failure_detector: Optional[object] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "processes", validate_process_ids(self.processes))
        if self.failures.max_failures > len(self.processes):
            raise ConfigurationError(
                f"failure bound f={self.failures.max_failures} exceeds the "
                f"number of processes n={len(self.processes)}"
            )
        if self.failure_detector is not None and not self.spec.failure_detectors:
            raise ConfigurationError(
                "a failure detector was supplied but the model spec says "
                "processes cannot query failure detectors"
            )

    # -- basic accessors ------------------------------------------------

    @property
    def n(self) -> int:
        """Number of processes in the system."""
        return len(self.processes)

    @property
    def f(self) -> int:
        """The failure bound of the model's failure assumption."""
        return self.failures.max_failures

    def __contains__(self, pid: object) -> bool:
        return pid in self.processes

    # -- derivation -----------------------------------------------------

    def restrict(
        self,
        subset: Iterable[ProcessId],
        *,
        name: Optional[str] = None,
        failures: Optional[FailureAssumption] = None,
        failure_detector: Optional[object] = None,
        keep_failure_detector: bool = False,
    ) -> "SystemModel":
        """Return the restricted model ``<D>`` on the processes in ``subset``.

        Following Section II-B the restricted model is *computationally
        compatible* with this one — it uses the same
        :class:`~repro.models.parameters.SystemModelSpec` — but its failure
        and failure-detector assumptions are whatever the caller supplies
        (they are not inherited implicitly, because the paper's
        constructions deliberately pick different assumptions for ``<D>``).
        By default the restricted model has no failure detector unless
        ``keep_failure_detector`` is set or a new one is given.
        """
        members = validate_process_ids(tuple(subset))
        unknown = [p for p in members if p not in self.processes]
        if unknown:
            raise ConfigurationError(
                f"cannot restrict to processes not in the model: {unknown}"
            )
        detector = failure_detector
        if detector is None and keep_failure_detector:
            detector = self.failure_detector
        new_failures = failures if failures is not None else FailureAssumption(
            min(self.failures.max_failures, max(len(members) - 1, 0)),
            initial_only=self.failures.initial_only,
            max_non_initial=self.failures.max_non_initial,
        )
        return SystemModel(
            name=name or f"{self.name}|{{{','.join(str(p) for p in members)}}}",
            processes=members,
            spec=self.spec,
            failures=new_failures,
            failure_detector=detector,
        )

    def with_failures(self, failures: FailureAssumption) -> "SystemModel":
        """Return a copy of the model with a different failure assumption."""
        return replace(self, failures=failures)

    def with_failure_detector(self, detector: object) -> "SystemModel":
        """Return a copy with a failure detector (enabling the 6th axis)."""
        spec = self.spec
        if not spec.failure_detectors:
            spec = replace(spec, failure_detectors=True)
        return replace(self, spec=spec, failure_detector=detector)

    # -- admissibility ----------------------------------------------------

    def admissibility_violations(self, run) -> List[str]:
        """Check a recorded run against the model's admissibility conditions.

        The argument is a :class:`repro.simulation.run.Run` (duck-typed to
        avoid an import cycle).  The following conditions are checked:

        * the crash schedule respects the failure assumption,
        * only processes of the model take steps,
        * crashed processes take no steps after their crash time,
        * when the run stopped because the adversary gave up (neither
          completed nor truncated by the step budget) while a correct,
          undecided process still had buffered messages: eventual delivery
          was abandoned, which a genuine infinite extension of the prefix
          would not be allowed to do.

        Note that leftover buffered messages in a *completed* run are not a
        violation — eventual delivery is a liveness condition that only an
        infinite run can violate, and any finite completed prefix extends
        to an admissible infinite run.

        Returns a list of human-readable violation descriptions; an empty
        list means the run is admissible.

        The step-wise conditions need the run's step-event trace, so runs
        recorded under a trimmed
        :class:`~repro.simulation.recording.RecordingPolicy` raise
        :class:`repro.exceptions.TraceUnavailableError` instead of
        silently certifying an unverifiable schedule.
        """
        recording = getattr(run, "recording", None)
        if recording is not None and not recording.records_events:
            raise TraceUnavailableError(
                "admissibility checking needs the step-event trace, which "
                f"RecordingPolicy.{recording.name} does not record; re-run "
                "with RecordingPolicy.FULL"
            )
        violations: List[str] = []
        crash_times = tuple(run.failure_pattern.crash_times.items())
        if not self.failures.allows(crash_times):
            violations.append(
                f"crash schedule {sorted(crash_times)} violates the failure "
                f"assumption ({self.failures.describe()})"
            )
        model_processes = set(self.processes)
        for event in run.events:
            if event.pid not in model_processes:
                violations.append(f"process p{event.pid} is not part of model {self.name}")
            crash_time = run.failure_pattern.crash_times.get(event.pid)
            if crash_time is not None and event.time > crash_time:
                violations.append(
                    f"crashed process p{event.pid} took a step at time {event.time} "
                    f"after its crash time {crash_time}"
                )
        if not run.completed and not run.truncated:
            undecided_correct = run.correct_processes() - run.decided_processes()
            for pid in sorted(undecided_correct):
                pending = run.undelivered_to(pid)
                if pending:
                    violations.append(
                        f"the schedule was abandoned while correct, undecided "
                        f"process p{pid} still had {len(pending)} buffered message(s)"
                    )
        return violations

    def is_admissible(self, run) -> bool:
        """``True`` when :meth:`admissibility_violations` finds nothing."""
        return not self.admissibility_violations(run)

    # -- misc -------------------------------------------------------------

    def describe(self) -> str:
        """A one-line description used by examples and reports."""
        detector = (
            f", failure detector {self.failure_detector}"
            if self.failure_detector is not None
            else ""
        )
        return (
            f"{self.name}: n={self.n}, spec={self.spec.label()}, "
            f"{self.failures.describe()}{detector}"
        )

    def __str__(self) -> str:
        return self.describe()
