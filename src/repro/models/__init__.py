"""System models: the Dolev–Dwork–Stockmeyer lattice plus failure detectors.

The paper (Section II) adopts the computing model of Dolev, Dwork and
Stockmeyer, in which 32 message-passing models arise from five binary
parameters — each either *favourable* (F) or *unfavourable* (U) for the
algorithm — and adds a sixth dimension: whether processes may query a
failure detector at the beginning of each step.

This subpackage provides:

* :mod:`repro.models.parameters` — the parameter lattice and
  :class:`~repro.models.parameters.SystemModelSpec`,
* :mod:`repro.models.model` — :class:`~repro.models.model.SystemModel`,
  failure assumptions, run-admissibility checks and model restriction
  ``<D>`` (Section II-B),
* :mod:`repro.models.asynchronous` — the FLP model ``M_ASYNC``,
* :mod:`repro.models.partially_synchronous` — the Theorem 2 model
  (synchronous processes, asynchronous communication, atomic broadcast
  steps),
* :mod:`repro.models.initial_crash` — the Section VI model in which all
  ``f`` failures are initial crashes,
* :mod:`repro.models.catalog` — the consensus possibility/impossibility
  catalogue the paper invokes as "[11, Table I]" for condition (C).
"""

from repro.models.parameters import (
    Favourability,
    ModelParameter,
    SystemModelSpec,
    ALL_SPECS,
)
from repro.models.model import FailureAssumption, SystemModel
from repro.models.asynchronous import asynchronous_model
from repro.models.partially_synchronous import partially_synchronous_model
from repro.models.initial_crash import initial_crash_model
from repro.models.catalog import (
    CatalogEntry,
    consensus_verdict,
    consensus_impossible,
    catalog_entries,
)

__all__ = [
    "Favourability",
    "ModelParameter",
    "SystemModelSpec",
    "ALL_SPECS",
    "FailureAssumption",
    "SystemModel",
    "asynchronous_model",
    "partially_synchronous_model",
    "initial_crash_model",
    "CatalogEntry",
    "consensus_verdict",
    "consensus_impossible",
    "catalog_entries",
]
