"""The initially-dead-processes model of Section VI.

The possibility result of the paper (Theorem 8) is proved in an
asynchronous system in which up to ``f`` processes may be *initially
dead*: a faulty process never takes a single step, so in particular it
never sends any message.  This is exactly the failure model of the second
part of the FLP paper, whose two-stage protocol the paper generalises.
"""

from __future__ import annotations

from typing import Optional

from repro.models.model import FailureAssumption, SystemModel
from repro.models.parameters import SystemModelSpec
from repro.types import process_range

__all__ = ["initial_crash_model", "INITIAL_CRASH_SPEC"]

#: Spec of the Section VI model: fully asynchronous, broadcast transmission
#: available (processes send their stage messages to everybody at once).
INITIAL_CRASH_SPEC = SystemModelSpec(
    synchronous_processes=False,
    synchronous_communication=False,
    ordered_messages=False,
    broadcast_transmission=True,
    atomic_receive_send=False,
    failure_detectors=False,
)


def initial_crash_model(
    n: int,
    f: int,
    *,
    name: Optional[str] = None,
) -> SystemModel:
    """Build the Section VI model: asynchronous, ``f`` initial crashes only."""
    return SystemModel(
        name=name or f"M_INIT(n={n}, f={f})",
        processes=process_range(n),
        spec=INITIAL_CRASH_SPEC,
        failures=FailureAssumption(max_failures=f, initial_only=True),
    )
