"""The consensus possibility/impossibility catalogue ("[11, Table I]").

Condition (C) of the paper's Theorem 1 requires a model ``M' = <D-bar>``
in which consensus is *unsolvable*.  The paper discharges this condition
by citing known results — the FLP impossibility and the classification of
Dolev, Dwork and Stockmeyer ("On the minimal synchronism needed for
distributed consensus", JACM 1987, Table I).  This module encodes exactly
the facts the paper relies on (plus a few well-known neighbouring facts)
as a verified lookup table:

* **FLP 1985** — in the fully asynchronous model, consensus is impossible
  as soon as a single process may crash.
* **DDS 1987, Table I** — in the model with *synchronous processes*,
  *asynchronous communication*, *atomic broadcast steps* (send and receive
  in the same atomic step), consensus is still impossible with one crash
  failure; this is the entry Theorem 2's condition (C) invokes.
* **Fully synchronous systems** — with synchronous processes and
  synchronous communication, consensus is solvable for any number of
  crash failures (``f < n``).
* **FLP 1985, Section 4** — with only *initially dead* processes,
  consensus is solvable iff a majority of processes is correct
  (``n > 2f``); the library additionally ships the algorithm.

Entries deliberately do not attempt to reproduce all 32 rows of DDS'87:
combinations the paper never relies on are reported as
:data:`repro.types.Verdict.UNKNOWN` instead of guessing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from repro.models.model import SystemModel
from repro.models.parameters import SystemModelSpec
from repro.types import Verdict

__all__ = [
    "CatalogEntry",
    "catalog_entries",
    "consensus_verdict",
    "consensus_impossible",
]


@dataclass(frozen=True)
class CatalogEntry:
    """One known fact about consensus solvability in a family of models.

    Attributes
    ----------
    name:
        Short identifier of the fact.
    reference:
        Bibliographic reference (as cited by the paper).
    matches:
        Predicate on ``(spec, n, f, initial_only)`` deciding whether the
        entry applies to a given model.
    verdict:
        The solvability verdict the entry asserts.
    statement:
        Human-readable statement of the fact.
    """

    name: str
    reference: str
    matches: Callable[[SystemModelSpec, int, int, bool], bool]
    verdict: Verdict
    statement: str


def _flp_matches(spec: SystemModelSpec, n: int, f: int, initial_only: bool) -> bool:
    fully_async = (
        not spec.synchronous_processes
        and not spec.synchronous_communication
        and not spec.ordered_messages
        and not spec.failure_detectors
    )
    return fully_async and n >= 2 and f >= 1 and not initial_only


def _dds_broadcast_matches(spec: SystemModelSpec, n: int, f: int, initial_only: bool) -> bool:
    return (
        spec.synchronous_processes
        and not spec.synchronous_communication
        and not spec.ordered_messages
        and not spec.failure_detectors
        and n >= 2
        and f >= 1
        and not initial_only
    )


def _fully_synchronous_matches(spec: SystemModelSpec, n: int, f: int, initial_only: bool) -> bool:
    return (
        spec.synchronous_processes
        and spec.synchronous_communication
        and n >= 1
        and f < n
    )


def _initial_crash_majority(spec: SystemModelSpec, n: int, f: int, initial_only: bool) -> bool:
    return initial_only and n > 2 * f


def _initial_crash_no_majority(spec: SystemModelSpec, n: int, f: int, initial_only: bool) -> bool:
    return initial_only and f < n and n <= 2 * f and not spec.synchronous_communication


_ENTRIES: Tuple[CatalogEntry, ...] = (
    CatalogEntry(
        name="flp-asynchronous",
        reference="Fischer, Lynch, Paterson, JACM 1985 ([14])",
        matches=_flp_matches,
        verdict=Verdict.IMPOSSIBLE,
        statement=(
            "In the fully asynchronous message-passing model, consensus is "
            "impossible if a single process may crash."
        ),
    ),
    CatalogEntry(
        name="dds-sync-processes-async-communication",
        reference="Dolev, Dwork, Stockmeyer, JACM 1987, Table I ([11])",
        matches=_dds_broadcast_matches,
        verdict=Verdict.IMPOSSIBLE,
        statement=(
            "With synchronous processes but asynchronous, unordered "
            "communication — even with atomic broadcast of send and receive "
            "— consensus is impossible if one process may crash."
        ),
    ),
    CatalogEntry(
        name="fully-synchronous",
        reference="Dolev, Dwork, Stockmeyer, JACM 1987 ([11])",
        matches=_fully_synchronous_matches,
        verdict=Verdict.SOLVABLE,
        statement=(
            "With synchronous processes and synchronous communication, "
            "consensus is solvable for any number f < n of crash failures."
        ),
    ),
    CatalogEntry(
        name="initial-crashes-majority",
        reference="Fischer, Lynch, Paterson, JACM 1985, Section 4 ([14])",
        matches=_initial_crash_majority,
        verdict=Verdict.SOLVABLE,
        statement=(
            "With only initially dead processes, consensus is solvable when "
            "a majority of processes is correct (n > 2f)."
        ),
    ),
    CatalogEntry(
        name="initial-crashes-no-majority",
        reference="Fischer, Lynch, Paterson, JACM 1985 / partitioning argument (Section VI)",
        matches=_initial_crash_no_majority,
        verdict=Verdict.IMPOSSIBLE,
        statement=(
            "With up to f initially dead processes and no correct majority "
            "(n <= 2f), consensus (1-set agreement) is impossible in an "
            "asynchronous system: the system can be partitioned into two "
            "halves that never hear from each other."
        ),
    ),
)


def catalog_entries() -> Tuple[CatalogEntry, ...]:
    """Return the encoded catalogue entries, in precedence order."""
    return _ENTRIES


def consensus_verdict(model: SystemModel) -> Tuple[Verdict, Optional[CatalogEntry]]:
    """Look up the consensus solvability verdict for ``model``.

    Returns ``(verdict, entry)`` where ``entry`` is the catalogue entry
    that produced the verdict, or ``(UNKNOWN, None)`` when no encoded fact
    applies.  Failure-detector-augmented models are never matched by the
    encoded entries (their solvability depends on the detector class and is
    handled by :mod:`repro.core.borders`).
    """
    spec = model.spec
    n = model.n
    f = model.failures.max_failures
    initial_only = model.failures.initial_only
    if spec.failure_detectors or model.failure_detector is not None:
        return Verdict.UNKNOWN, None
    for entry in _ENTRIES:
        if entry.matches(spec, n, f, initial_only):
            return entry.verdict, entry
    return Verdict.UNKNOWN, None


def consensus_impossible(model: SystemModel) -> bool:
    """``True`` when the catalogue certifies consensus impossible in ``model``.

    This is the exact form in which Theorem 1's condition (C) consumes the
    catalogue: a ``True`` answer is backed by a published impossibility
    result; a ``False`` answer means "not certified impossible", not
    "solvable".
    """
    verdict, _entry = consensus_verdict(model)
    return verdict is Verdict.IMPOSSIBLE
