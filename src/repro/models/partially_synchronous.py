"""The partially synchronous model of Theorem 2.

Theorem 2 of the paper is stated for a system in which

* processes are synchronous,
* communication is asynchronous,
* a process can broadcast a message in an atomic step, and
* receiving and sending are part of the same atomic step,

and in which, of the ``f`` possibly faulty processes, ``f - 1`` may fail
by crashing *initially* while only one process may crash during the
execution.  Despite the strong process synchrony, the asynchronous
communication allows the partitioning adversary of the proof to delay all
messages between the blocks ``D_1, ..., D_{k-1}, D-bar`` until every
process has decided, and the single non-initial crash supplies the FLP
impossibility inside ``<D-bar>`` (condition (C) via the DDS'87 catalogue).
"""

from __future__ import annotations

from typing import Optional

from repro.models.model import FailureAssumption, SystemModel
from repro.models.parameters import SystemModelSpec
from repro.types import process_range

__all__ = ["partially_synchronous_model", "THEOREM2_SPEC"]

#: The Theorem 2 spec: synchronous processes, asynchronous communication,
#: broadcast transmission, atomic receive+send, unordered messages, no
#: failure detector.
THEOREM2_SPEC = SystemModelSpec(
    synchronous_processes=True,
    synchronous_communication=False,
    ordered_messages=False,
    broadcast_transmission=True,
    atomic_receive_send=True,
    failure_detectors=False,
)


def partially_synchronous_model(
    n: int,
    f: int,
    *,
    name: Optional[str] = None,
) -> SystemModel:
    """Build the Theorem 2 model with ``n`` processes and ``f`` faults.

    The failure assumption allows ``f`` crashes of which at most one may
    occur after the initial configuration (``f - 1`` initial crashes plus
    one crash during the execution), exactly as in the theorem statement.
    """
    max_non_initial = 1 if f >= 1 else 0
    return SystemModel(
        name=name or f"M_PSYNC(n={n}, f={f})",
        processes=process_range(n),
        spec=THEOREM2_SPEC,
        failures=FailureAssumption(max_failures=f, max_non_initial=max_non_initial),
    )
