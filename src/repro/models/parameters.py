"""The Dolev–Dwork–Stockmeyer model parameters, plus the paper's 6th axis.

Dolev, Dwork and Stockmeyer ("On the minimal synchronism needed for
distributed consensus", JACM 1987) classify message-passing models along
five binary parameters, each of which can be *favourable* (F) or
*unfavourable* (U) for the algorithm:

1. **processes** — synchronous (F: relative speeds bounded) or
   asynchronous (U),
2. **communication** — synchronous (F: message delays bounded) or
   asynchronous (U),
3. **message order** — messages delivered in the real-time order they were
   sent (F) or in arbitrary order (U),
4. **transmission** — broadcast, i.e. a process can send to everybody in a
   single atomic step (F), or point-to-point (U),
5. **receive/send atomicity** — receiving and sending belong to the same
   atomic step (F) or are separate steps (U).

The paper adds a sixth parameter:

6. **failure detectors** — processes can query a failure detector at the
   beginning of each step (F) or have no such oracle (U).

:class:`SystemModelSpec` is an immutable record of one point in this
64-element lattice, ordered by "favourability" (a spec is at least as
strong as another when it is favourable in every parameter the other is).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Iterator, Tuple

__all__ = [
    "Favourability",
    "ModelParameter",
    "SystemModelSpec",
    "ALL_SPECS",
]


class Favourability(enum.Enum):
    """Whether a model parameter takes its favourable or unfavourable value."""

    FAVOURABLE = "F"
    UNFAVOURABLE = "U"

    def __str__(self) -> str:
        return self.value

    @property
    def is_favourable(self) -> bool:
        """``True`` for the favourable (algorithm-friendly) choice."""
        return self is Favourability.FAVOURABLE


class ModelParameter(enum.Enum):
    """The six binary dimensions spanning the model lattice."""

    PROCESS_SYNCHRONY = "process_synchrony"
    COMMUNICATION_SYNCHRONY = "communication_synchrony"
    MESSAGE_ORDER = "message_order"
    BROADCAST = "broadcast"
    ATOMIC_RECEIVE_SEND = "atomic_receive_send"
    FAILURE_DETECTORS = "failure_detectors"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class SystemModelSpec:
    """One point of the (extended) Dolev–Dwork–Stockmeyer model lattice.

    Each attribute is ``True`` when the corresponding parameter takes its
    favourable value.  The default constructor yields the fully
    unfavourable model, i.e. the FLP model ``M_ASYNC`` without failure
    detectors.
    """

    synchronous_processes: bool = False
    synchronous_communication: bool = False
    ordered_messages: bool = False
    broadcast_transmission: bool = False
    atomic_receive_send: bool = False
    failure_detectors: bool = False

    def value(self, parameter: ModelParameter) -> Favourability:
        """Return the favourability of ``parameter`` in this spec."""
        mapping = {
            ModelParameter.PROCESS_SYNCHRONY: self.synchronous_processes,
            ModelParameter.COMMUNICATION_SYNCHRONY: self.synchronous_communication,
            ModelParameter.MESSAGE_ORDER: self.ordered_messages,
            ModelParameter.BROADCAST: self.broadcast_transmission,
            ModelParameter.ATOMIC_RECEIVE_SEND: self.atomic_receive_send,
            ModelParameter.FAILURE_DETECTORS: self.failure_detectors,
        }
        return Favourability.FAVOURABLE if mapping[parameter] else Favourability.UNFAVOURABLE

    def as_tuple(self) -> Tuple[bool, ...]:
        """The six parameter values as a tuple (ordered as in the paper)."""
        return (
            self.synchronous_processes,
            self.synchronous_communication,
            self.ordered_messages,
            self.broadcast_transmission,
            self.atomic_receive_send,
            self.failure_detectors,
        )

    def at_least_as_favourable_as(self, other: "SystemModelSpec") -> bool:
        """Partial order: favourable in every parameter where ``other`` is.

        An impossibility established in a spec carries over to every spec
        that is *at most* as favourable (Corollary 5 of the paper applies
        this observation), while a possibility carries over to every spec
        that is *at least* as favourable.
        """
        return all(a >= b for a, b in zip(self.as_tuple(), other.as_tuple()))

    def weaken(self, parameter: ModelParameter) -> "SystemModelSpec":
        """Return a copy with ``parameter`` made unfavourable."""
        return self._with(parameter, False)

    def strengthen(self, parameter: ModelParameter) -> "SystemModelSpec":
        """Return a copy with ``parameter`` made favourable."""
        return self._with(parameter, True)

    def _with(self, parameter: ModelParameter, value: bool) -> "SystemModelSpec":
        fields = {
            ModelParameter.PROCESS_SYNCHRONY: "synchronous_processes",
            ModelParameter.COMMUNICATION_SYNCHRONY: "synchronous_communication",
            ModelParameter.MESSAGE_ORDER: "ordered_messages",
            ModelParameter.BROADCAST: "broadcast_transmission",
            ModelParameter.ATOMIC_RECEIVE_SEND: "atomic_receive_send",
            ModelParameter.FAILURE_DETECTORS: "failure_detectors",
        }
        kwargs = {
            "synchronous_processes": self.synchronous_processes,
            "synchronous_communication": self.synchronous_communication,
            "ordered_messages": self.ordered_messages,
            "broadcast_transmission": self.broadcast_transmission,
            "atomic_receive_send": self.atomic_receive_send,
            "failure_detectors": self.failure_detectors,
        }
        kwargs[fields[parameter]] = value
        return SystemModelSpec(**kwargs)

    def label(self) -> str:
        """A compact F/U string such as ``"FUUFF U"`` (5 core + FD axis)."""
        core = "".join("F" if v else "U" for v in self.as_tuple()[:5])
        detector = "F" if self.failure_detectors else "U"
        return f"{core} {detector}"

    def __str__(self) -> str:
        return self.label()


def _all_specs() -> Tuple[SystemModelSpec, ...]:
    specs = []
    for values in itertools.product((False, True), repeat=6):
        specs.append(SystemModelSpec(*values))
    return tuple(specs)


#: All 64 points of the extended lattice (32 DDS models x failure-detector
#: availability), in lexicographic order of their parameter tuples.
ALL_SPECS: Tuple[SystemModelSpec, ...] = _all_specs()


def iter_core_specs() -> Iterator[SystemModelSpec]:
    """Iterate over the 32 original DDS'87 models (no failure detectors)."""
    for spec in ALL_SPECS:
        if not spec.failure_detectors:
            yield spec
