"""The FLP asynchronous model ``M_ASYNC``.

Section II of the paper singles out the model of Fischer, Lynch and
Paterson: processes and communication are asynchronous, every correct
process takes an infinite number of steps, faulty processes execute only
finitely many steps (and may omit sending messages to a subset of the
receivers in their very last step), and every message sent to a correct
receiver is eventually received.

In the simulator, ``M_ASYNC`` is the fully unfavourable point of the
Dolev–Dwork–Stockmeyer lattice with a crash-failure budget ``f``; the
fairness conditions are enforced by the executor and checked post-hoc by
:meth:`repro.models.model.SystemModel.admissibility_violations`.
"""

from __future__ import annotations

from typing import Optional

from repro.models.model import FailureAssumption, SystemModel
from repro.models.parameters import SystemModelSpec
from repro.types import process_range

__all__ = ["asynchronous_model", "ASYNC_SPEC"]

#: The model spec of ``M_ASYNC``: every parameter unfavourable.
ASYNC_SPEC = SystemModelSpec()


def asynchronous_model(
    n: int,
    f: int,
    *,
    failure_detector: Optional[object] = None,
    name: Optional[str] = None,
) -> SystemModel:
    """Build the asynchronous model ``M_ASYNC`` with ``n`` processes.

    Parameters
    ----------
    n:
        Number of processes (identifiers ``1..n``).
    f:
        Crash-failure budget; crashes may occur at any time.
    failure_detector:
        When given, the model becomes the augmented model
        ``<M_ASYNC, D>`` of Section II-C in which processes may query the
        detector at the beginning of every step.
    name:
        Optional explicit model name.
    """
    spec = ASYNC_SPEC
    if failure_detector is not None:
        spec = SystemModelSpec(failure_detectors=True)
    return SystemModel(
        name=name or (f"M_ASYNC(n={n}, f={f})" if failure_detector is None
                      else f"<M_ASYNC(n={n}, f={f}), {failure_detector}>"),
        processes=process_range(n),
        spec=spec,
        failures=FailureAssumption(max_failures=f),
        failure_detector=failure_detector,
    )
