"""Shared primitive types used throughout the :mod:`repro` library.

The paper models a system ``Pi = {p_1, ..., p_n}`` of ``n`` processes with
unique identifiers ``1..n`` that communicate by message passing.  Time is
discrete and identified with the index of a step in a run.  This module
collects the corresponding type aliases and small value objects so that the
rest of the library can share a single vocabulary.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Hashable, Iterable, Sequence

__all__ = [
    "ProcessId",
    "Value",
    "Time",
    "UNDECIDED",
    "Undecided",
    "Verdict",
    "ProcessSet",
    "process_range",
    "validate_process_ids",
    "validate_k",
]

#: Process identifier.  The paper numbers processes ``1..n``; the library
#: follows that convention (identifiers are 1-based everywhere).
ProcessId = int

#: Proposal / decision values.  Any hashable object may be proposed; the
#: paper only requires ``|V| >= n`` so that runs in which all processes
#: propose distinct values exist.
Value = Hashable

#: Discrete time: the index of a step in a run (the ``i``-th step of a run
#: occurs at time ``i``), exactly as in Section II-C of the paper.
Time = int


class Undecided:
    """Singleton sentinel for the initial output value ``bottom``.

    The paper initialises the write-once output ``y_p`` of every process to
    a value that is not an element of the proposal universe ``V``.  Using a
    dedicated sentinel (rather than ``None``) keeps ``None`` available as a
    legitimate proposal value in user code.
    """

    _instance: "Undecided | None" = None

    def __new__(cls) -> "Undecided":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "UNDECIDED"

    def __reduce__(self):  # keep singleton identity across copy/pickle
        return (Undecided, ())

    def __bool__(self) -> bool:
        return False


#: The unique "not yet decided" sentinel (the paper's ``bottom``).
UNDECIDED = Undecided()


class Verdict(enum.Enum):
    """Outcome of a solvability question for a parameter point.

    ``SOLVABLE``   -- an algorithm exists (and the library ships one).
    ``IMPOSSIBLE`` -- the paper proves no algorithm exists.
    ``UNKNOWN``    -- outside the region the paper characterises.
    """

    SOLVABLE = "solvable"
    IMPOSSIBLE = "impossible"
    UNKNOWN = "unknown"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True, order=True)
class ProcessSet:
    """An immutable, canonically ordered set of process identifiers.

    The proofs in the paper constantly manipulate sets of processes
    (partitions ``D_1, ..., D_{k-1}``, the remainder ``D-bar``, quorums,
    crash sets).  ``ProcessSet`` wraps a ``frozenset`` but iterates in
    ascending identifier order which makes traces and error messages
    deterministic.
    """

    members: frozenset[ProcessId]

    def __init__(self, members: Iterable[ProcessId] = ()):
        object.__setattr__(self, "members", frozenset(int(p) for p in members))

    def __iter__(self):
        return iter(sorted(self.members))

    def __len__(self) -> int:
        return len(self.members)

    def __contains__(self, pid: object) -> bool:
        return pid in self.members

    def __or__(self, other: "ProcessSet | Iterable[ProcessId]") -> "ProcessSet":
        return ProcessSet(self.members | ProcessSet(other).members)

    def __and__(self, other: "ProcessSet | Iterable[ProcessId]") -> "ProcessSet":
        return ProcessSet(self.members & ProcessSet(other).members)

    def __sub__(self, other: "ProcessSet | Iterable[ProcessId]") -> "ProcessSet":
        return ProcessSet(self.members - ProcessSet(other).members)

    def __repr__(self) -> str:
        return "{" + ", ".join(f"p{p}" for p in sorted(self.members)) + "}"

    def isdisjoint(self, other: "ProcessSet | Iterable[ProcessId]") -> bool:
        """Return ``True`` when the two sets share no process."""
        return self.members.isdisjoint(ProcessSet(other).members)

    def issubset(self, other: "ProcessSet | Iterable[ProcessId]") -> bool:
        """Return ``True`` when every member also belongs to ``other``."""
        return self.members.issubset(ProcessSet(other).members)

    @property
    def smallest(self) -> ProcessId:
        """The minimum process identifier in the set.

        Raises :class:`ValueError` for the empty set.
        """
        if not self.members:
            raise ValueError("empty ProcessSet has no smallest member")
        return min(self.members)


def process_range(n: int) -> tuple[ProcessId, ...]:
    """Return the canonical process identifiers ``(1, ..., n)``.

    >>> process_range(4)
    (1, 2, 3, 4)
    """
    if n < 1:
        raise ValueError(f"a system needs at least one process, got n={n}")
    return tuple(range(1, n + 1))


def validate_process_ids(processes: Sequence[ProcessId]) -> tuple[ProcessId, ...]:
    """Validate and canonicalise a sequence of process identifiers.

    Identifiers must be positive integers without duplicates.  The returned
    tuple is sorted ascending.
    """
    seen: set[ProcessId] = set()
    for pid in processes:
        if not isinstance(pid, int) or isinstance(pid, bool) or pid < 1:
            raise ValueError(f"process ids must be positive integers, got {pid!r}")
        if pid in seen:
            raise ValueError(f"duplicate process id {pid}")
        seen.add(pid)
    if not seen:
        raise ValueError("a system needs at least one process")
    return tuple(sorted(seen))


def validate_k(k: int, n: int) -> int:
    """Validate the set-agreement parameter ``k`` against the system size.

    The paper considers ``1 <= k``; values ``k >= n`` make the problem
    trivially solvable (every process decides its own proposal), and the
    library accepts them, but ``k < 1`` is rejected.
    """
    if not isinstance(k, int) or isinstance(k, bool) or k < 1:
        raise ValueError(f"k must be a positive integer, got {k!r}")
    if n < 1:
        raise ValueError(f"n must be a positive integer, got {n!r}")
    return k
