"""Product failure detectors such as ``(Sigma_k, Omega_k)``.

The paper studies the *pair* ``(Sigma_k, Omega_k)``: a detector whose
output combines a quorum component and a leader component, each of which
must individually satisfy its class's properties for the run's failure
pattern.  :class:`ProductDetector` composes any number of named component
detectors; its output is a dictionary keyed by component name, and its
history checker simply projects the recorded history onto every component
and delegates.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Tuple

from repro.exceptions import ConfigurationError
from repro.failure_detectors.base import (
    FailureDetector,
    FailurePattern,
    RecordedHistory,
)
from repro.failure_detectors.omega import OmegaK
from repro.failure_detectors.sigma import SigmaK
from repro.types import ProcessId, Time

__all__ = ["ProductDetector", "sigma_omega_k"]


class ProductDetector(FailureDetector):
    """The product of several named component detectors.

    The output at ``(p, t)`` is a mapping ``component name -> component
    output``; a recorded history of the product is admissible exactly when
    each projected component history is admissible for its class.
    """

    def __init__(self, components: Mapping[str, FailureDetector], name: str | None = None):
        if not components:
            raise ConfigurationError("a product detector needs at least one component")
        self.components: Dict[str, FailureDetector] = dict(components)
        self.name = name or "(" + ", ".join(d.name for d in self.components.values()) + ")"

    def output(self, pid: ProcessId, t: Time, pattern: FailurePattern) -> Dict[str, object]:
        """Query every component and return the combined output."""
        return {
            key: detector.output(pid, t, pattern)
            for key, detector in self.components.items()
        }

    def check_history(self, history: RecordedHistory, pattern: FailurePattern) -> List[str]:
        """Check each component's projected history against its class."""
        violations: List[str] = []
        for key, detector in self.components.items():
            projected = history.project(lambda output, key=key: output[key])
            for violation in detector.check_history(projected, pattern):
                violations.append(f"[{key}] {violation}")
        return violations

    def component(self, key: str) -> FailureDetector:
        """Return a named component detector."""
        return self.components[key]


def sigma_omega_k(
    k: int,
    *,
    gst: Time = 0,
    leaders: Tuple[ProcessId, ...] | None = None,
) -> ProductDetector:
    """Build the paper's ``(Sigma_k, Omega_k)`` product detector.

    Components are named ``"sigma"`` and ``"omega"``; algorithms access
    them as ``fd_output["sigma"]`` and ``fd_output["omega"]``.
    """
    return ProductDetector(
        {
            "sigma": SigmaK(k),
            "omega": OmegaK(k, gst=gst, leaders=leaders),
        },
        name=f"(Sigma_{k}, Omega_{k})",
    )
