"""The partition failure detector ``(Sigma'_k, Omega'_k)`` of Definition 7.

Theorem 10's proof does not work with ``(Sigma_k, Omega_k)`` directly;
it works with a *stronger* detector that nevertheless permits the system
to split into ``k`` partitions:

* Fix a partitioning ``{D_1, ..., D_{k-1}, D_k}`` of the processes (the
  paper writes ``D-bar = D_k``).
* The ``Sigma'_k`` output at every process of ``D_i`` is a valid history
  of the classic quorum detector ``Sigma`` *in the restricted model
  <D_i>* — only processes of ``D_i`` are ever output — except that a
  crashed process's output is the full set ``Pi``.
* ``Omega'_k`` equals ``Omega_k``.

Because quorums in different blocks are disjoint, such histories never
force communication across blocks; yet Lemma 9 shows every partitioning
history is also a valid ``(Sigma_k, Omega_k)`` history, which is what
carries the impossibility over to the weaker detector.

:class:`PartitionDetector` realises exactly these histories: the quorum
component returns the processes of the querier's block that are still
alive, and the leader component behaves like :class:`OmegaK`.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Sequence, Tuple

from repro.exceptions import ConfigurationError
from repro.failure_detectors.base import (
    FailureDetector,
    FailurePattern,
    RecordedHistory,
)
from repro.failure_detectors.omega import OmegaK, check_omega_history
from repro.failure_detectors.sigma import check_sigma_history
from repro.types import ProcessId, Time

__all__ = ["PartitionDetector"]


class PartitionDetector(FailureDetector):
    """Constructive history function for ``(Sigma'_k, Omega'_k)``.

    Parameters
    ----------
    blocks:
        The partitioning ``D_1, ..., D_k`` of the process set.  The number
        of blocks is the detector's parameter ``k``; the last block plays
        the role of the paper's ``D-bar`` but the detector itself treats
        all blocks uniformly (Definition 7 does).
    gst:
        Stabilisation time of the ``Omega'_k`` component.
    leaders:
        Optional explicit final leader set (see :class:`OmegaK`).
    """

    def __init__(
        self,
        blocks: Sequence[Iterable[ProcessId]],
        *,
        gst: Time = 0,
        leaders: Iterable[ProcessId] | None = None,
    ):
        block_sets: List[FrozenSet[ProcessId]] = [frozenset(b) for b in blocks]
        if not block_sets:
            raise ConfigurationError("the partition must have at least one block")
        if any(not block for block in block_sets):
            raise ConfigurationError("partition blocks must be nonempty")
        all_members: List[ProcessId] = sorted(p for block in block_sets for p in block)
        if len(all_members) != len(set(all_members)):
            raise ConfigurationError("partition blocks must be pairwise disjoint")
        self.blocks: Tuple[FrozenSet[ProcessId], ...] = tuple(block_sets)
        self.k = len(block_sets)
        self._block_of: Dict[ProcessId, FrozenSet[ProcessId]] = {
            p: block for block in block_sets for p in block
        }
        self._omega = OmegaK(self.k, gst=gst, leaders=leaders, universe=all_members)
        self.name = f"(Sigma'_{self.k}, Omega'_{self.k})"

    @property
    def gst(self) -> Time:
        """Stabilisation time of the leader component."""
        return self._omega.gst

    def block_of(self, pid: ProcessId) -> FrozenSet[ProcessId]:
        """Return the partition block containing ``pid``."""
        try:
            return self._block_of[pid]
        except KeyError:
            raise ConfigurationError(f"process p{pid} is not covered by the partition") from None

    def output(self, pid: ProcessId, t: Time, pattern: FailurePattern) -> Dict[str, object]:
        """Return the combined ``{"sigma": ..., "omega": ...}`` output."""
        return {
            "sigma": self._sigma_prime(pid, t, pattern),
            "omega": self._omega.output(pid, t, pattern),
        }

    def _sigma_prime(
        self, pid: ProcessId, t: Time, pattern: FailurePattern
    ) -> FrozenSet[ProcessId]:
        if pattern.is_crashed(pid, t):
            # Definition 7: after p_j's crash time the output is the whole set Pi.
            return frozenset(pattern.processes)
        block = self.block_of(pid)
        alive_in_block = block & pattern.alive_at(t)
        if alive_in_block:
            return alive_in_block
        # The querier is alive, so its own block always has a live member.
        return frozenset({pid})  # pragma: no cover - defensive

    def check_history(self, history: RecordedHistory, pattern: FailurePattern) -> List[str]:
        """Check Definition 7 on a recorded history.

        The quorum component must be a valid ``Sigma`` (= ``Sigma_1``)
        history *within each block* (restricted failure pattern), except
        for crashed queriers whose output must be ``Pi``; the leader
        component must satisfy ``Omega_k``.
        """
        violations: List[str] = []
        sigma_history = history.project(lambda output: output["sigma"])
        omega_history = history.project(lambda output: output["omega"])

        for record in sigma_history:
            if pattern.is_crashed(record.pid, record.time):
                if frozenset(record.output) != frozenset(pattern.processes):
                    violations.append(
                        f"Sigma'_{self.k}: crashed p{record.pid} must output Pi at "
                        f"t={record.time}, got {sorted(record.output)}"
                    )
                continue
            block = self.block_of(record.pid)
            if not frozenset(record.output).issubset(block):
                violations.append(
                    f"Sigma'_{self.k}: output of p{record.pid} at t={record.time} "
                    f"leaves its block {sorted(block)}: {sorted(record.output)}"
                )

        for block in self.blocks:
            block_records = RecordedHistory(
                r
                for r in sigma_history
                if r.pid in block and not pattern.is_crashed(r.pid, r.time)
            )
            block_pattern = pattern.restricted_to(block)
            for violation in check_sigma_history(block_records, block_pattern, k=1):
                violations.append(f"[block {sorted(block)}] {violation}")

        for violation in check_omega_history(omega_history, pattern, self.k):
            violations.append(f"[omega] {violation}")
        return violations
