"""The perfect and eventually perfect failure detectors ``P`` and ``<>P``.

Neither class appears in the paper's theorems, but both are standard
reference points of the Chandra–Toueg hierarchy and are used by the test
suite as "strong" baselines: ``P`` never suspects a correct process and
eventually suspects every crashed one; ``<>P`` may make finitely many
mistakes before behaving like ``P``.  Having them in the library also lets
examples contrast what ``(Sigma_k, Omega_k)`` can and cannot provide.
"""

from __future__ import annotations

from typing import FrozenSet, List

from repro.exceptions import ConfigurationError
from repro.failure_detectors.base import (
    FailureDetector,
    FailurePattern,
    RecordedHistory,
)
from repro.types import ProcessId, Time

__all__ = ["PerfectDetector", "EventuallyPerfectDetector"]


class PerfectDetector(FailureDetector):
    """The perfect failure detector ``P``.

    Output: the set of *suspected* processes.  Strong completeness
    (eventually every crashed process is suspected by every correct one)
    and strong accuracy (no process is suspected before it crashes) hold by
    construction: the output at time ``t`` is exactly the set of processes
    crashed by ``t``.
    """

    name = "P"

    def output(self, pid: ProcessId, t: Time, pattern: FailurePattern) -> FrozenSet[ProcessId]:
        """Return the set of processes crashed by time ``t``."""
        return pattern.crashed_at(t)

    def check_history(self, history: RecordedHistory, pattern: FailurePattern) -> List[str]:
        """Check strong accuracy and (finite-run) completeness."""
        violations: List[str] = []
        for record in history:
            suspected = frozenset(record.output)
            premature = {
                p for p in suspected if not pattern.is_crashed(p, record.time)
            }
            if premature:
                violations.append(
                    f"P accuracy violated: p{record.pid} suspected live processes "
                    f"{sorted(premature)} at time {record.time}"
                )
        horizon = pattern.last_crash_time
        for record in history.outputs_after(horizon):
            if record.pid in pattern.faulty:
                continue
            missing = pattern.faulty - frozenset(record.output)
            if missing:
                violations.append(
                    f"P completeness violated: p{record.pid} failed to suspect "
                    f"{sorted(missing)} at time {record.time}"
                )
        return violations


class EventuallyPerfectDetector(FailureDetector):
    """The eventually perfect failure detector ``<>P``.

    Before the stabilisation time ``gst`` the detector may erroneously
    suspect live processes (here: it suspects every process with an
    identifier larger than the querier's, a deterministic but clearly
    wrong guess); from ``gst`` on it behaves exactly like ``P``.
    """

    def __init__(self, gst: Time = 0):
        if gst < 0:
            raise ConfigurationError(f"gst must be >= 0, got {gst}")
        self.gst = gst
        self.name = "<>P"
        self._perfect = PerfectDetector()

    def output(self, pid: ProcessId, t: Time, pattern: FailurePattern) -> FrozenSet[ProcessId]:
        """Return the suspected set at ``(pid, t)``."""
        if t >= self.gst:
            return self._perfect.output(pid, t, pattern)
        wrong_guess = frozenset(p for p in pattern.processes if p > pid)
        return wrong_guess | pattern.crashed_at(t)

    def check_history(self, history: RecordedHistory, pattern: FailurePattern) -> List[str]:
        """Check eventual accuracy and completeness on the recorded suffix."""
        violations: List[str] = []
        horizon = max(pattern.last_crash_time, self.gst)
        for record in history.outputs_after(horizon):
            if record.pid in pattern.faulty:
                continue
            suspected = frozenset(record.output)
            premature = {p for p in suspected if p in pattern.correct}
            if premature:
                violations.append(
                    f"<>P eventual accuracy violated: p{record.pid} suspected correct "
                    f"processes {sorted(premature)} at time {record.time}"
                )
            missing = pattern.faulty - suspected
            if missing:
                violations.append(
                    f"<>P completeness violated: p{record.pid} failed to suspect "
                    f"{sorted(missing)} at time {record.time}"
                )
        return violations
