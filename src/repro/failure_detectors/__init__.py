"""Failure detectors: patterns, histories, and the classes used by the paper.

Section II-C of the paper augments the asynchronous model with failure
detectors in the sense of Chandra and Toueg: an oracle that every process
may query at the beginning of each step, whose admissible outputs (the
*history*) depend only on the *failure pattern* of the run.  This
subpackage implements:

* :mod:`repro.failure_detectors.base` — failure patterns, recorded
  histories and the :class:`~repro.failure_detectors.base.FailureDetector`
  interface,
* :mod:`repro.failure_detectors.sigma` — the generalised quorum family
  ``Sigma_k`` (Definition 4),
* :mod:`repro.failure_detectors.omega` — the generalised leader family
  ``Omega_k`` (Definition 5),
* :mod:`repro.failure_detectors.combined` — product detectors such as
  ``(Sigma_k, Omega_k)``,
* :mod:`repro.failure_detectors.partition` — the partition detector
  ``(Sigma'_k, Omega'_k)`` of Definition 7, used by Theorem 10,
* :mod:`repro.failure_detectors.perfect` — ``P`` and ``diamond-P`` for
  tests and context,
* :mod:`repro.failure_detectors.loneliness` — the loneliness detector of
  the authors' companion work,
* :mod:`repro.failure_detectors.transformations` — comparison relations
  between detector classes and the Lemma 9 transformation,
* :mod:`repro.failure_detectors.registry` — a name-based factory registry.
"""

from repro.failure_detectors.base import (
    FailureDetector,
    FailurePattern,
    QueryRecord,
    RecordedHistory,
)
from repro.failure_detectors.sigma import SigmaK, check_sigma_history
from repro.failure_detectors.omega import OmegaK, check_omega_history
from repro.failure_detectors.combined import ProductDetector, sigma_omega_k
from repro.failure_detectors.partition import PartitionDetector
from repro.failure_detectors.perfect import PerfectDetector, EventuallyPerfectDetector
from repro.failure_detectors.loneliness import LonelinessDetector
from repro.failure_detectors.transformations import (
    Transformation,
    lemma9_transformation,
    verify_lemma9,
)
from repro.failure_detectors.registry import available_detectors, make_detector

__all__ = [
    "FailureDetector",
    "FailurePattern",
    "QueryRecord",
    "RecordedHistory",
    "SigmaK",
    "check_sigma_history",
    "OmegaK",
    "check_omega_history",
    "ProductDetector",
    "sigma_omega_k",
    "PartitionDetector",
    "PerfectDetector",
    "EventuallyPerfectDetector",
    "LonelinessDetector",
    "Transformation",
    "lemma9_transformation",
    "verify_lemma9",
    "available_detectors",
    "make_detector",
]
