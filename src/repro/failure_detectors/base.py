"""Failure patterns, recorded histories and the failure-detector interface.

The paper (Section II-C) identifies time with the step index of a run.
The *failure pattern* ``F(t)`` of a run maps every time to the set of
processes that have crashed by then; the *faulty* processes are
``F = union over t of F(t)``.  A failure detector ``D`` assigns to every
failure pattern a set of admissible *histories* ``H(p, t)`` mapping a
process and a time to an output value; a run is admissible when every
query result observed by a process at time ``t`` equals ``H(p, t)`` for
some admissible history.

The simulator takes the constructive view: a
:class:`FailureDetector` instance *is* a history function — it computes
``H(p, t)`` deterministically from the (planned) failure pattern of the
run being constructed — and every class ships a *checker* that validates a
recorded history against the class's defining properties, so tests and
benchmarks can verify that the constructive histories really belong to the
class they claim (this is exactly what Lemma 9's verification needs).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError
from repro.types import ProcessId, Time

__all__ = ["FailurePattern", "QueryRecord", "RecordedHistory", "FailureDetector"]


@dataclass(frozen=True)
class FailurePattern:
    """The failure pattern ``F(.)`` of a run.

    ``crash_times`` maps every faulty process to the time of its crash;
    processes not in the mapping are correct.  A crash time of ``0`` means
    the process is initially dead (it never takes a step).
    """

    processes: Tuple[ProcessId, ...]
    crash_times: Mapping[ProcessId, Time] = field(default_factory=dict)

    def __post_init__(self) -> None:
        unknown = [p for p in self.crash_times if p not in self.processes]
        if unknown:
            raise ConfigurationError(f"crash times given for unknown processes {unknown}")
        bad = {p: t for p, t in self.crash_times.items() if t < 0}
        if bad:
            raise ConfigurationError(f"crash times must be >= 0, got {bad}")
        object.__setattr__(self, "crash_times", dict(self.crash_times))

    # -- constructors ---------------------------------------------------

    @classmethod
    def all_correct(cls, processes: Sequence[ProcessId]) -> "FailurePattern":
        """A failure pattern with no crashes at all."""
        return cls(tuple(processes), {})

    @classmethod
    def initially_dead(
        cls, processes: Sequence[ProcessId], dead: Iterable[ProcessId]
    ) -> "FailurePattern":
        """A failure pattern in which ``dead`` are initially crashed."""
        return cls(tuple(processes), {pid: 0 for pid in dead})

    # -- queries ---------------------------------------------------------

    @property
    def faulty(self) -> FrozenSet[ProcessId]:
        """The set ``F`` of processes that crash at some point in the run."""
        return frozenset(self.crash_times)

    @property
    def correct(self) -> FrozenSet[ProcessId]:
        """The processes that never crash."""
        return frozenset(self.processes) - self.faulty

    @property
    def initially_dead_set(self) -> FrozenSet[ProcessId]:
        """Processes whose crash time is 0 (never take a step)."""
        return frozenset(p for p, t in self.crash_times.items() if t == 0)

    def crashed_at(self, t: Time) -> FrozenSet[ProcessId]:
        """The set ``F(t)`` of processes crashed at (or before) time ``t``."""
        return frozenset(p for p, ct in self.crash_times.items() if ct <= t)

    def alive_at(self, t: Time) -> FrozenSet[ProcessId]:
        """Processes that have not crashed by time ``t``."""
        return frozenset(self.processes) - self.crashed_at(t)

    def is_crashed(self, pid: ProcessId, t: Time) -> bool:
        """``True`` when ``pid`` has crashed by time ``t``."""
        ct = self.crash_times.get(pid)
        return ct is not None and ct <= t

    @property
    def last_crash_time(self) -> Time:
        """The latest crash time (0 when nothing crashes)."""
        return max(self.crash_times.values(), default=0)

    def restricted_to(self, subset: Iterable[ProcessId]) -> "FailurePattern":
        """The failure pattern induced on a subset of the processes."""
        members = tuple(sorted(set(subset)))
        return FailurePattern(
            members, {p: t for p, t in self.crash_times.items() if p in members}
        )

    def merge(self, other: "FailurePattern") -> "FailurePattern":
        """Combine two patterns over disjoint process sets.

        Used by the run-pasting constructions (Lemma 11): the failure
        pattern of the pasted run agrees with one constituent pattern on
        ``D-bar`` and with the other on ``Pi \\ D-bar``.
        """
        overlap = set(self.processes) & set(other.processes)
        if overlap:
            conflicting = {
                p
                for p in overlap
                if self.crash_times.get(p) != other.crash_times.get(p)
            }
            if conflicting:
                raise ConfigurationError(
                    f"cannot merge failure patterns that disagree on {sorted(conflicting)}"
                )
        processes = tuple(sorted(set(self.processes) | set(other.processes)))
        crash_times = dict(self.crash_times)
        crash_times.update(other.crash_times)
        return FailurePattern(processes, crash_times)

    def describe(self) -> str:
        """Human-readable summary used by traces."""
        if not self.crash_times:
            return "no failures"
        parts = [
            f"p{p}@{'init' if t == 0 else t}" for p, t in sorted(self.crash_times.items())
        ]
        return "crashes: " + ", ".join(parts)


@dataclass(frozen=True)
class QueryRecord:
    """A single failure-detector query observed in a run."""

    pid: ProcessId
    time: Time
    output: object


class RecordedHistory:
    """The portion of a failure-detector history observed during a run.

    A history formally assigns an output to *every* ``(process, time)``
    pair; a simulation only ever observes it at the times processes
    actually query the detector.  ``RecordedHistory`` stores those observed
    points and is what the property checkers
    (:func:`repro.failure_detectors.sigma.check_sigma_history` etc.)
    operate on.
    """

    def __init__(self, records: Iterable[QueryRecord] = ()):
        self._records: List[QueryRecord] = list(records)

    def record(self, pid: ProcessId, time: Time, output: object) -> None:
        """Append one observed query result."""
        self._records.append(QueryRecord(pid, time, output))

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self):
        return iter(self._records)

    def records_of(self, pid: ProcessId) -> Tuple[QueryRecord, ...]:
        """All observed queries of one process, in time order."""
        return tuple(sorted((r for r in self._records if r.pid == pid), key=lambda r: r.time))

    def processes(self) -> FrozenSet[ProcessId]:
        """Processes that queried the detector at least once."""
        return frozenset(r.pid for r in self._records)

    def last_output(self, pid: ProcessId) -> Optional[object]:
        """The most recent output observed by ``pid`` (or ``None``)."""
        records = self.records_of(pid)
        return records[-1].output if records else None

    def outputs_after(self, time: Time) -> Tuple[QueryRecord, ...]:
        """All query records strictly after ``time``."""
        return tuple(r for r in self._records if r.time > time)

    def project(self, extract) -> "RecordedHistory":
        """Return a new history with ``extract`` applied to every output.

        Used to split the history of a product detector into its component
        histories (e.g. the ``Sigma_k`` part of a ``(Sigma_k, Omega_k)``
        history).
        """
        return RecordedHistory(
            QueryRecord(r.pid, r.time, extract(r.output)) for r in self._records
        )


class FailureDetector(abc.ABC):
    """Interface of a constructive failure-detector history function.

    A concrete detector computes the output ``H(p, t)`` of the history it
    realises, given the (planned) failure pattern of the run under
    construction.  Implementations must be deterministic functions of
    ``(pid, t, pattern)`` and the detector's own configuration so that runs
    are reproducible.
    """

    #: Short class name, e.g. ``"Sigma_2"`` — set by subclasses.
    name: str = "detector"

    @abc.abstractmethod
    def output(self, pid: ProcessId, t: Time, pattern: FailurePattern) -> object:
        """Return ``H(pid, t)`` for the history realised on ``pattern``."""

    def check_history(
        self, history: RecordedHistory, pattern: FailurePattern
    ) -> List[str]:
        """Validate a recorded history against the class's properties.

        The default implementation accepts everything; concrete classes
        override it.  Returns a list of human-readable violations (empty
        means the recorded history is consistent with the class).
        """
        return []

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"
