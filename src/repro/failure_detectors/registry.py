"""A small name-based registry of failure-detector factories.

Benchmarks, examples and command-line experiments refer to detector
classes by name (``"sigma_k"``, ``"omega_k"``, ``"sigma_omega_k"``,
``"partition"``, ``"perfect"``, ``"eventually_perfect"``, ``"loneliness"``)
rather than importing concrete classes; the registry maps those names to
factory callables.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.exceptions import ConfigurationError
from repro.failure_detectors.base import FailureDetector
from repro.failure_detectors.combined import sigma_omega_k
from repro.failure_detectors.loneliness import LonelinessDetector
from repro.failure_detectors.omega import OmegaK
from repro.failure_detectors.partition import PartitionDetector
from repro.failure_detectors.perfect import EventuallyPerfectDetector, PerfectDetector
from repro.failure_detectors.sigma import SigmaK

__all__ = ["available_detectors", "make_detector", "register_detector"]

_FACTORIES: Dict[str, Callable[..., FailureDetector]] = {
    "sigma_k": lambda k=1, **kw: SigmaK(k),
    "omega_k": lambda k=1, **kw: OmegaK(k, **kw),
    "sigma_omega_k": lambda k=1, **kw: sigma_omega_k(k, **kw),
    "partition": lambda blocks, **kw: PartitionDetector(blocks, **kw),
    "perfect": lambda **kw: PerfectDetector(),
    "eventually_perfect": lambda gst=0, **kw: EventuallyPerfectDetector(gst),
    "loneliness": lambda **kw: LonelinessDetector(),
}


def available_detectors() -> Tuple[str, ...]:
    """Return the registered detector names, sorted."""
    return tuple(sorted(_FACTORIES))


def register_detector(name: str, factory: Callable[..., FailureDetector]) -> None:
    """Register a custom detector factory under ``name``.

    Re-registering an existing name raises
    :class:`repro.exceptions.ConfigurationError` to avoid silent clashes.
    """
    if name in _FACTORIES:
        raise ConfigurationError(f"failure detector {name!r} is already registered")
    _FACTORIES[name] = factory


def make_detector(name: str, **kwargs) -> FailureDetector:
    """Instantiate a registered detector by name.

    >>> make_detector("sigma_k", k=2).name
    'Sigma_2'
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown failure detector {name!r}; available: {', '.join(available_detectors())}"
        ) from None
    return factory(**kwargs)
