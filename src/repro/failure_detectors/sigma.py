"""The generalised quorum failure detector ``Sigma_k`` (Definition 4).

``Sigma_k`` outputs a set of *trusted* process identifiers subject to

* **Intersection** — for every set of ``k + 1`` processes and every choice
  of ``k + 1`` query times, at least two of the returned quorums
  intersect;
* **Liveness** — eventually the quorum returned to every correct process
  contains only correct processes.

By convention (as in the paper), once a process has crashed its history
value is the full process set ``Pi``.

The constructive history implemented here returns, at time ``t``, the set
of processes that have not crashed by ``t`` (and ``Pi`` for crashed
queriers).  That history satisfies both properties for *every* ``k``:
any two outputs contain all correct processes, so they intersect whenever
at least one process is correct (and equal ``Pi`` otherwise), and after
the last crash the alive set equals the correct set.  It moreover becomes
the singleton ``{p}`` when ``p`` is the only surviving process — the
situation the ``Sigma_{n-1}``-based algorithm for (n-1)-set agreement
relies on for termination.
"""

from __future__ import annotations

import itertools
from typing import FrozenSet, List

from repro.exceptions import ConfigurationError
from repro.failure_detectors.base import (
    FailureDetector,
    FailurePattern,
    RecordedHistory,
)
from repro.types import ProcessId, Time

__all__ = ["SigmaK", "check_sigma_history"]


class SigmaK(FailureDetector):
    """Constructive history function for the class ``Sigma_k``.

    Parameters
    ----------
    k:
        The quorum parameter; ``k = 1`` is the classic quorum detector
        ``Sigma``.
    """

    def __init__(self, k: int = 1):
        if k < 1:
            raise ConfigurationError(f"Sigma_k requires k >= 1, got {k}")
        self.k = k
        self.name = f"Sigma_{k}" if k != 1 else "Sigma"

    def output(self, pid: ProcessId, t: Time, pattern: FailurePattern) -> FrozenSet[ProcessId]:
        """Return the trusted set at ``(pid, t)``.

        Crashed queriers receive the full process set (the paper's
        convention); live queriers receive the set of processes that have
        not crashed by time ``t``.
        """
        if pattern.is_crashed(pid, t):
            return frozenset(pattern.processes)
        return pattern.alive_at(t)

    def check_history(self, history: RecordedHistory, pattern: FailurePattern) -> List[str]:
        """Check the recorded history against Definition 4.

        Both properties are checked over the *observed* query points: the
        intersection property over every ``(k+1)``-subset of querying
        processes and every combination of one observed query time per
        member, and liveness as "after the last crash, every output of a
        correct process avoids the faulty set".
        """
        return check_sigma_history(history, pattern, self.k)


def check_sigma_history(
    history: RecordedHistory, pattern: FailurePattern, k: int
) -> List[str]:
    """Validate a recorded history against the ``Sigma_k`` properties.

    Returns a list of violation descriptions (empty when the history is
    consistent with ``Sigma_k`` on the observed query points).

    Notes
    -----
    The intersection property quantifies over all times; a recorded history
    only exposes the query times that actually occurred in the run, so this
    checker verifies the property at those points.  This is the relevant
    direction for the paper's arguments: a violation found here disproves
    membership in ``Sigma_k``, while an absence of violations is evidence
    (and, for the constructive histories of this module, is backed by the
    analytic argument in the class docstring).
    """
    violations: List[str] = []
    if k < 1:
        raise ConfigurationError(f"Sigma_k requires k >= 1, got {k}")

    queriers = sorted(history.processes())
    for record in history:
        if not isinstance(record.output, (set, frozenset)):
            violations.append(
                f"Sigma output at (p{record.pid}, t={record.time}) is not a set: "
                f"{record.output!r}"
            )
    if violations:
        return violations

    # Intersection: every (k+1)-subset of queriers, every combination of one
    # observed query per member.
    for group in itertools.combinations(queriers, k + 1):
        group_records = [history.records_of(pid) for pid in group]
        if any(not records for records in group_records):
            continue
        for combo in itertools.product(*group_records):
            if not _some_pair_intersects([r.output for r in combo]):
                where = ", ".join(f"(p{r.pid}, t={r.time})" for r in combo)
                violations.append(
                    f"Sigma_{k} intersection violated for queries {where}: "
                    "all returned quorums are pairwise disjoint"
                )
                break  # one witness per group keeps reports readable

    # Liveness: after the last crash, outputs of correct processes avoid F.
    faulty = pattern.faulty
    horizon = pattern.last_crash_time
    for record in history.outputs_after(horizon):
        if record.pid in faulty:
            continue
        if frozenset(record.output) & faulty:
            violations.append(
                f"Sigma_{k} liveness violated: correct p{record.pid} trusted "
                f"faulty processes {sorted(frozenset(record.output) & faulty)} "
                f"at time {record.time} (> last crash time {horizon})"
            )
    return violations


def _some_pair_intersects(quorums) -> bool:
    for a, b in itertools.combinations(quorums, 2):
        if frozenset(a) & frozenset(b):
            return True
    return False
