"""Comparison of failure-detector classes and the Lemma 9 transformation.

Chandra and Toueg compare failure-detector classes through
*transformations*: an algorithm ``A_{D -> D'}`` that, running in a system
equipped with ``D``, maintains output variables emulating admissible
histories of ``D'``.  ``D'`` is then *weaker* than ``D``; two classes are
*equivalent* when transformations exist in both directions.

The library models a transformation as a pure function on recorded
histories: given the history observed while querying the source detector
(plus the run's failure pattern), it produces the emulated history of the
target class.  A :class:`Transformation` also knows how to *verify* its
output, by running the target class's checker on the emulated history —
this is how the benchmark for Lemma 9 demonstrates that every partitioning
history of ``(Sigma'_k, Omega'_k)`` is admissible for ``(Sigma_k,
Omega_k)``.

Lemma 9's transformation is the identity: a partitioning history already
*is* a ``(Sigma_k, Omega_k)`` history, because (i) quorums within a block
pairwise intersect, and by the pigeonhole principle any ``k + 1`` queried
processes include two from the same block, and (ii) ``Omega'_k`` equals
``Omega_k`` by definition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.failure_detectors.base import FailurePattern, RecordedHistory
from repro.failure_detectors.omega import check_omega_history
from repro.failure_detectors.sigma import check_sigma_history

__all__ = [
    "Transformation",
    "identity_transformation",
    "lemma9_transformation",
    "verify_lemma9",
]


@dataclass(frozen=True)
class Transformation:
    """An emulation of one failure-detector class from another.

    Attributes
    ----------
    name:
        Human-readable name, e.g. ``"(Sigma'_k,Omega'_k) -> (Sigma_k,Omega_k)"``.
    source:
        Name of the source class (the detector actually queried).
    target:
        Name of the emulated class.
    emulate:
        Function mapping ``(history, pattern)`` to the emulated history.
    verify:
        Function mapping ``(emulated_history, pattern)`` to a list of
        violations of the *target* class's properties; an empty list means
        the emulation produced an admissible target history for this run.
    """

    name: str
    source: str
    target: str
    emulate: Callable[[RecordedHistory, FailurePattern], RecordedHistory]
    verify: Callable[[RecordedHistory, FailurePattern], List[str]]

    def apply_and_verify(
        self, history: RecordedHistory, pattern: FailurePattern
    ) -> List[str]:
        """Emulate the target history and return its property violations."""
        emulated = self.emulate(history, pattern)
        return self.verify(emulated, pattern)


def identity_transformation(
    name: str,
    source: str,
    target: str,
    verify: Callable[[RecordedHistory, FailurePattern], List[str]],
) -> Transformation:
    """Build a transformation whose emulation is the identity function.

    Identity transformations capture "class X is (syntactically) also a
    class Y history" arguments, of which Lemma 9 is the instance used in
    the paper.
    """
    return Transformation(
        name=name,
        source=source,
        target=target,
        emulate=lambda history, pattern: history,
        verify=verify,
    )


def _verify_sigma_omega(k: int):
    def verify(history: RecordedHistory, pattern: FailurePattern) -> List[str]:
        violations: List[str] = []
        sigma_history = history.project(lambda output: output["sigma"])
        omega_history = history.project(lambda output: output["omega"])
        violations.extend(
            f"[sigma] {v}" for v in check_sigma_history(sigma_history, pattern, k)
        )
        violations.extend(
            f"[omega] {v}" for v in check_omega_history(omega_history, pattern, k)
        )
        return violations

    return verify


def lemma9_transformation(k: int) -> Transformation:
    """The Lemma 9 transformation ``(Sigma'_k, Omega'_k) -> (Sigma_k, Omega_k)``.

    The emulation is the identity; verification checks the emulated (i.e.
    original) history against the intersection and liveness properties of
    ``Sigma_k`` and the validity and eventual-leadership properties of
    ``Omega_k``.
    """
    return identity_transformation(
        name=f"(Sigma'_{k},Omega'_{k}) -> (Sigma_{k},Omega_{k})",
        source=f"(Sigma'_{k}, Omega'_{k})",
        target=f"(Sigma_{k}, Omega_{k})",
        verify=_verify_sigma_omega(k),
    )


def verify_lemma9(
    history: RecordedHistory,
    pattern: FailurePattern,
    k: int,
) -> List[str]:
    """Check Lemma 9 on a recorded partitioning history.

    Returns the list of ``(Sigma_k, Omega_k)`` property violations of the
    history; an empty list is the Lemma 9 conclusion — the partitioning
    history is admissible for the weaker detector — for this particular
    run.
    """
    return lemma9_transformation(k).apply_and_verify(history, pattern)
