"""The loneliness failure detector ``L``.

The authors' companion paper ("Weak synchrony models and failure detectors
for message passing k-set agreement", OPODIS 2009 — reference [2] of the
reproduced paper) introduces a *generalised loneliness* family ``L(k)``
and shows that ``L = L(n-1)`` is tightly linked to (n-1)-set agreement.
The reproduced paper only mentions the family in passing, so this module
ships the classic boolean loneliness detector, which is the member the
related literature uses for (n-1)-set agreement:

* **Safety** — in every run, at least one process never outputs ``True``.
* **Liveness** — if all processes except one crash, the remaining correct
  process eventually outputs ``True`` forever.

The constructive history outputs ``True`` at a live process exactly when
that process is the only one still alive.  Safety holds because the
process with the smallest crash-free lifetime horizon — in particular any
run with two or more correct processes — never sees itself alone; when all
processes are correct nobody ever outputs ``True``.
"""

from __future__ import annotations

from typing import List

from repro.failure_detectors.base import (
    FailureDetector,
    FailurePattern,
    RecordedHistory,
)
from repro.types import ProcessId, Time

__all__ = ["LonelinessDetector"]


class LonelinessDetector(FailureDetector):
    """Constructive history function for the loneliness detector ``L``."""

    name = "L"

    def output(self, pid: ProcessId, t: Time, pattern: FailurePattern) -> bool:
        """Return ``True`` iff ``pid`` is the only process alive at ``t``."""
        alive = pattern.alive_at(t)
        return alive == frozenset({pid})

    def check_history(self, history: RecordedHistory, pattern: FailurePattern) -> List[str]:
        """Check the safety and (observable) liveness of a recorded history."""
        violations: List[str] = []
        lonely = {r.pid for r in history if r.output is True}
        if lonely == set(pattern.processes) and len(pattern.processes) > 1:
            violations.append(
                "L safety violated: every process output True at least once"
            )
        if len(pattern.correct) == 1:
            survivor = next(iter(pattern.correct))
            records = history.records_of(survivor)
            late = [r for r in records if r.time > pattern.last_crash_time]
            if late and not any(r.output is True for r in late):
                violations.append(
                    f"L liveness violated: sole survivor p{survivor} never output True "
                    "after the last crash"
                )
        return violations
