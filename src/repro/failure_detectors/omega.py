"""The generalised leader oracle ``Omega_k`` (Definition 5).

``Omega_k`` outputs, at every process and every time, a set of exactly
``k`` process identifiers (*validity*), and guarantees **eventual
leadership**: there is a time ``t_GST`` and a set ``LD`` of ``k``
processes containing at least one correct process such that after
``t_GST`` every query (of every process) returns ``LD``.

The constructive history implemented here takes an explicit stabilisation
time ``gst`` and an optional explicit leader set.  Before ``gst`` the
output rotates through ``k``-windows of the process ring (making the
pre-stabilisation period genuinely unstable, which is what exposes naive
algorithms); from ``gst`` on it returns the fixed leader set, which by
default consists of the ``k`` smallest-identifier correct processes
(padded with faulty ones if fewer than ``k`` processes are correct).
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError
from repro.failure_detectors.base import (
    FailureDetector,
    FailurePattern,
    RecordedHistory,
)
from repro.types import ProcessId, Time

__all__ = ["OmegaK", "check_omega_history"]


class OmegaK(FailureDetector):
    """Constructive history function for the class ``Omega_k``.

    Parameters
    ----------
    k:
        Size of the leader set; ``k = 1`` is the classic ``Omega``.
    gst:
        Stabilisation time: from this time on, every output equals the
        final leader set.  Before it the output rotates, modelling the
        arbitrary behaviour ``Omega_k`` allows pre-stabilisation.
    leaders:
        Optional explicit final leader set ``LD`` (must have exactly ``k``
        members drawn from the pattern's process set and intersect the
        correct processes).  When omitted, the ``k`` smallest correct
        identifiers (padded with the smallest faulty ones) are used.
    rotation_period:
        How many time units each pre-stabilisation window lasts.
    universe:
        Optional fixed process universe to draw leader identifiers from.
        By default the universe is the failure pattern's process set; the
        partition detector passes the full system here so that leader sets
        remain well defined (and identical) when the same detector is
        queried in a *restricted* execution over a subset of the processes
        — which is what condition (D) of Theorem 1 compares.
    """

    def __init__(
        self,
        k: int = 1,
        *,
        gst: Time = 0,
        leaders: Optional[Iterable[ProcessId]] = None,
        rotation_period: int = 3,
        universe: Optional[Iterable[ProcessId]] = None,
    ):
        if k < 1:
            raise ConfigurationError(f"Omega_k requires k >= 1, got {k}")
        if gst < 0:
            raise ConfigurationError(f"gst must be >= 0, got {gst}")
        if rotation_period < 1:
            raise ConfigurationError("rotation_period must be >= 1")
        self.k = k
        self.gst = gst
        self.rotation_period = rotation_period
        self._explicit_leaders = frozenset(leaders) if leaders is not None else None
        self._universe = tuple(sorted(universe)) if universe is not None else None
        self.name = f"Omega_{k}" if k != 1 else "Omega"

    # -- helpers ----------------------------------------------------------

    def _process_universe(self, pattern: FailurePattern) -> tuple:
        if self._universe is not None:
            return self._universe
        return tuple(sorted(pattern.processes))

    def final_leaders(self, pattern: FailurePattern) -> FrozenSet[ProcessId]:
        """The stabilised leader set ``LD`` for a given failure pattern."""
        processes = sorted(self._process_universe(pattern))
        if self.k > len(processes):
            raise ConfigurationError(
                f"Omega_{self.k} needs at least {self.k} processes, "
                f"model has {len(processes)}"
            )
        if self._explicit_leaders is not None:
            leaders = self._explicit_leaders
            if len(leaders) != self.k:
                raise ConfigurationError(
                    f"explicit leader set must have exactly k={self.k} members, "
                    f"got {sorted(leaders)}"
                )
            if not set(leaders).issubset(set(processes)):
                raise ConfigurationError("explicit leader set contains unknown processes")
            if pattern.correct and not (leaders & pattern.correct):
                raise ConfigurationError(
                    "explicit leader set contains no correct process for this pattern"
                )
            return leaders
        correct = sorted(pattern.correct)
        chosen = correct[: self.k]
        if len(chosen) < self.k:
            fillers = [p for p in processes if p not in pattern.correct]
            chosen += fillers[: self.k - len(chosen)]
        return frozenset(chosen)

    def _rotating_window(self, t: Time, processes: Sequence[ProcessId]) -> FrozenSet[ProcessId]:
        ordered = sorted(processes)
        n = len(ordered)
        start = (t // self.rotation_period) % n
        window = [ordered[(start + i) % n] for i in range(min(self.k, n))]
        return frozenset(window)

    # -- FailureDetector interface -----------------------------------------

    def output(self, pid: ProcessId, t: Time, pattern: FailurePattern) -> FrozenSet[ProcessId]:
        """Return the leader set at ``(pid, t)``."""
        if t >= self.gst:
            return self.final_leaders(pattern)
        return self._rotating_window(t, self._process_universe(pattern))

    def check_history(self, history: RecordedHistory, pattern: FailurePattern) -> List[str]:
        """Check a recorded history against Definition 5."""
        return check_omega_history(history, pattern, self.k)


def check_omega_history(
    history: RecordedHistory, pattern: FailurePattern, k: int
) -> List[str]:
    """Validate a recorded history against the ``Omega_k`` properties.

    *Validity* is checked at every observed query (exactly ``k``
    identifiers from the process set).  *Eventual leadership* is checked by
    searching for a time after which all observed outputs coincide and the
    common set intersects the correct processes; since a recorded history
    is finite, "no stabilisation point found among the observed queries"
    is reported as a violation — the constructive histories of
    :class:`OmegaK` always stabilise at their ``gst``.
    """
    violations: List[str] = []
    processes = set(pattern.processes)
    records: List[Tuple[Time, ProcessId, FrozenSet[ProcessId]]] = []
    for record in history:
        output = record.output
        if not isinstance(output, (set, frozenset)):
            violations.append(
                f"Omega output at (p{record.pid}, t={record.time}) is not a set: {output!r}"
            )
            continue
        output = frozenset(output)
        if len(output) != k:
            violations.append(
                f"Omega_{k} validity violated at (p{record.pid}, t={record.time}): "
                f"output has {len(output)} members instead of {k}"
            )
        if not output.issubset(processes):
            violations.append(
                f"Omega_{k} output at (p{record.pid}, t={record.time}) mentions "
                f"unknown processes {sorted(output - processes)}"
            )
        records.append((record.time, record.pid, output))
    if not records:
        return violations

    records.sort()
    correct = pattern.correct
    # Find the latest suffix on which all outputs agree.
    suffix_start = len(records) - 1
    final = records[-1][2]
    while suffix_start > 0 and records[suffix_start - 1][2] == final:
        suffix_start -= 1
    stabilised = all(out == final for _t, _p, out in records[suffix_start:])
    if not stabilised:  # pragma: no cover - by construction of suffix_start
        violations.append(f"Omega_{k}: no stabilised suffix found")
        return violations
    if correct and not (final & correct):
        violations.append(
            f"Omega_{k} eventual leadership violated: the stabilised leader set "
            f"{sorted(final)} contains no correct process"
        )
    if suffix_start == len(records) and len(records) > 0:
        violations.append(f"Omega_{k}: history never stabilises on a common leader set")
    return violations
