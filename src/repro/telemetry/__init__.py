"""Unified telemetry: spans, metrics, exporters and structured logging.

The observability layer of the campaign stack, one level of abstraction
per module and **stdlib-only imports** throughout, so every other layer
(simulation executor included) may depend on it without cycles:

- :mod:`repro.telemetry.spans` — hierarchical span tracing with an
  ambient, thread-local tracer.  Telemetry is **off by default**: with
  no tracer active the executor's only residue is a ``None`` check.
- :mod:`repro.telemetry.metrics` — named counters, gauges and bounded
  histograms whose deterministic fields (counts, integer sums, bins)
  are bit-identical across recording policies and campaign backends.
- :mod:`repro.telemetry.export` — torn-tail-safe Chrome trace-event
  files (Perfetto / ``chrome://tracing`` load them directly) and
  metrics JSONL dumps.
- :mod:`repro.telemetry.logs` — the structured logging facade carrying
  campaign/scenario correlation ids as fields.
- :mod:`repro.telemetry.session` — :class:`TelemetrySession`, the
  campaign-level tie-in consumed by
  :class:`~repro.store.caching.CachingRunner`, and the picklable
  :class:`WorkerTelemetry` slice that crosses into worker processes
  with deterministic scenario sampling.

The CLI endpoint ``python -m repro.telemetry.report`` (trace validation,
per-phase breakdowns, slowest-scenario tables, journal join) is
deliberately not re-exported here — it joins the provenance layer
lazily and must not be imported as a package side effect.

Typical use::

    from repro.campaign import CampaignRunner, theorem8_specs
    from repro.store import CachingRunner, open_store
    from repro.telemetry import TelemetryConfig, TelemetrySession

    session = TelemetrySession(TelemetryConfig(
        trace_path="campaign_trace.jsonl",
        metrics_path="campaign_metrics.jsonl",
    ))
    with CachingRunner(
        open_store("theorem8.sqlite"),
        CampaignRunner(backend="process", workers=8),
        telemetry=session,
    ) as runner:
        runner.run(theorem8_specs([4, 5, 6, 7]))
    print(session.finish())   # exports trace + metrics, reports paths
"""

from repro.telemetry.export import (
    TELEMETRY_SCHEMA_VERSION,
    ChromeTraceWriter,
    append_metrics,
    read_metrics,
    read_trace,
    span_to_trace_event,
    write_trace,
)
from repro.telemetry.logs import (
    DEFAULT_FORMAT,
    configure,
    get_logger,
    stream_logger,
    with_context,
)
from repro.telemetry.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.telemetry.session import TelemetryConfig, TelemetrySession, WorkerTelemetry
from repro.telemetry.spans import (
    PhaseAccumulator,
    SpanRecord,
    Tracer,
    activate,
    activated,
    current_tracer,
    deactivate,
    span,
)

__all__ = [
    "TELEMETRY_SCHEMA_VERSION",
    # spans
    "SpanRecord",
    "PhaseAccumulator",
    "Tracer",
    "activate",
    "activated",
    "current_tracer",
    "deactivate",
    "span",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    # export
    "ChromeTraceWriter",
    "span_to_trace_event",
    "write_trace",
    "read_trace",
    "append_metrics",
    "read_metrics",
    # logging facade
    "DEFAULT_FORMAT",
    "get_logger",
    "configure",
    "stream_logger",
    "with_context",
    # session
    "TelemetryConfig",
    "TelemetrySession",
    "WorkerTelemetry",
]
