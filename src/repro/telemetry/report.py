"""``python -m repro.telemetry.report`` — validate and summarise a trace.

CI runs this against the trace the telemetry-enabled smoke campaign
produced, exactly like ``repro.provenance.report`` validates the
journal: a malformed trace file (mid-file corruption, non-trace JSON,
events missing required fields) exits non-zero.

On a healthy trace it prints, per campaign correlation id:

* the per-phase time breakdown (scheduling / delivery / transition /
  recording), with lap counts — the profile ROADMAP item 3's
  batch-vectorized kernel work targets;
* the slowest traced scenarios, with their worker pids — pool-wide,
  since worker-side spans carry their producing pid;
* with ``--metrics``, the campaign's counter/histogram dump including
  the cache-hit rate;
* with ``--journal``, a join against the provenance journal: traced
  span coverage vs the ledger's ``ran`` count for the same campaign id.

Like the provenance CLI, this module is an endpoint, not part of the
package API: it imports the provenance layer lazily inside
:func:`main` so importing :mod:`repro.telemetry` stays dependency-free.
"""

from __future__ import annotations

import argparse
import sys
from collections import defaultdict
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError
from repro.telemetry.export import read_metrics, read_trace

__all__ = ["main", "summarize_trace"]


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry.report",
        description="Validate a Chrome trace-event file and report per-phase "
        "time breakdowns, slowest scenarios and cache-hit summaries.",
    )
    parser.add_argument("trace", help="path to a Chrome trace-event file (JSONL)")
    parser.add_argument(
        "--metrics", help="metrics JSONL dump to summarise alongside the trace")
    parser.add_argument(
        "--journal",
        help="campaign journal to join (validates traced campaign ids against "
        "the provenance ledger)",
    )
    parser.add_argument(
        "--top", type=int, default=10,
        help="how many slowest scenarios to list per campaign (default 10)",
    )
    return parser


def _format_table(rows: List[List[str]], header: List[str]) -> str:
    widths = [
        max(len(header[column]), *(len(row[column]) for row in rows))
        if rows
        else len(header[column])
        for column in range(len(header))
    ]

    def fmt(row: List[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(row, widths)).rstrip()

    return "\n".join([fmt(header)] + [fmt(row) for row in rows])


def _validate_events(events: Sequence[Dict[str, Any]]) -> None:
    for index, event in enumerate(events):
        for key in ("name", "ph", "ts", "pid"):
            if key not in event:
                raise ConfigurationError(
                    f"trace event #{index} is missing required field {key!r}: "
                    f"{event!r}"
                )


def summarize_trace(
    events: Sequence[Dict[str, Any]],
) -> Dict[str, Dict[str, Any]]:
    """Fold trace events into one summary dict per campaign id.

    Each summary holds ``phases`` (name → ``[seconds, laps]``),
    ``scenarios`` (``(duration_s, label, pid)`` tuples), ``executes``
    (count), ``pids`` (set) and ``campaign_span`` (the parent-side root
    span's args, when present).
    """
    summaries: Dict[str, Dict[str, Any]] = {}
    for event in events:
        if event.get("ph") != "X":
            continue
        args = event.get("args") or {}
        campaign = str(args.get("trace_id", ""))
        summary = summaries.get(campaign)
        if summary is None:
            summary = summaries[campaign] = {
                "phases": defaultdict(lambda: [0.0, 0]),
                "scenarios": [],
                "executes": 0,
                "pids": set(),
                "campaign_span": None,
            }
        summary["pids"].add(event.get("pid"))
        name = event["name"]
        duration = float(event.get("dur", 0.0)) / 1e6
        if name.startswith("phase:"):
            entry = summary["phases"][name[len("phase:"):]]
            entry[0] += duration
            entry[1] += int(args.get("laps", 0))
        elif name == "scenario":
            summary["scenarios"].append(
                (duration, str(args.get("label", "?")), event.get("pid")))
        elif name == "execute":
            summary["executes"] += 1
        elif name == "campaign":
            summary["campaign_span"] = dict(args)
    return summaries


def _print_campaign(campaign: str, summary: Dict[str, Any], top: int, out) -> None:
    root = summary["campaign_span"]
    label = campaign or "(no campaign id)"
    out(f"\ncampaign {label}: {len(summary['scenarios'])} traced scenario(s), "
        f"{summary['executes']} execution(s), "
        f"{len(summary['pids'])} process(es)")
    if root is not None:
        out(f"  total {root.get('total', '?')} scenario(s), "
            f"sampling stride {root.get('stride', '?')}")
    phases = summary["phases"]
    if phases:
        total_phase_seconds = sum(entry[0] for entry in phases.values()) or 1.0
        rows = [
            [name, f"{entry[0] * 1e3:.2f}", str(entry[1]),
             f"{100.0 * entry[0] / total_phase_seconds:.1f}%"]
            for name, entry in sorted(
                phases.items(), key=lambda item: -item[1][0])
        ]
        out("  per-phase time breakdown:")
        for line in _format_table(rows, ["phase", "ms", "laps", "share"]).splitlines():
            out(f"    {line}")
    slowest = sorted(summary["scenarios"], reverse=True)[:max(0, top)]
    if slowest:
        rows = [
            [f"{seconds * 1e3:.2f}", str(pid), label]
            for seconds, label, pid in slowest
        ]
        out(f"  slowest traced scenario(s) (top {len(rows)}):")
        for line in _format_table(rows, ["ms", "pid", "scenario"]).splitlines():
            out(f"    {line}")


def _print_metrics(path: str, summaries, out) -> int:
    try:
        dumps = read_metrics(path)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    out(f"\nmetrics: {path} ({len(dumps)} snapshot(s))")
    for dump in dumps:
        campaign = dump.get("campaign", "?")
        metrics = dump.get("metrics", {})
        completed = metrics.get("scenarios_completed", {}).get("value", 0)
        cached = metrics.get("scenarios_cached", {}).get("value", 0)
        hit_rate = cached / completed if completed else 0.0
        out(f"  campaign {campaign}: {completed} completed, {cached} cached "
            f"(hit rate {hit_rate:.1%})")
        for name in sorted(metrics):
            snap = metrics[name]
            kind = snap.get("type")
            if kind == "counter":
                out(f"    {name:<28} {snap.get('value')}")
            elif kind == "gauge":
                out(f"    {name:<28} {snap.get('value')} (gauge)")
            elif kind == "histogram":
                out(f"    {name:<28} count={snap.get('count')} "
                    f"sum={snap.get('sum')} min={snap.get('min')} "
                    f"max={snap.get('max')}")
    return 0


def _print_journal_join(path: str, summaries, out) -> int:
    # Lazy import: provenance sits beside telemetry, but the telemetry
    # package itself must not import it as a side effect.
    from repro.provenance.journal import read_journal, replay_ledger

    try:
        replay = replay_ledger(read_journal(path))
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    out(f"\njournal join: {path} ({len(replay.campaigns)} campaign(s))")
    for campaign, summary in sorted(summaries.items()):
        if not campaign:
            continue
        ledger = replay.campaigns.get(campaign)
        if ledger is None:
            out(f"  campaign {campaign}: NOT in journal")
            continue
        traced = len(summary["scenarios"])
        executed = ledger.ran
        coverage = traced / executed if executed else 0.0
        state = "finished" if ledger.finished else "INCOMPLETE"
        out(f"  campaign {campaign} [{state}]: traced {traced} of "
            f"{executed} ran ({coverage:.0%} span coverage), "
            f"{ledger.cached} cached, {ledger.skipped} skipped, "
            f"{ledger.usage.seconds:.2f}s journaled wall time")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _parser().parse_args(argv)
    out = print
    try:
        events = read_trace(args.trace)
        _validate_events(events)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    summaries = summarize_trace(events)
    out(f"trace: {args.trace}")
    out(f"  events: {len(events)}  campaigns: {len(summaries)}  "
        f"processes: {len({e.get('pid') for e in events})}")
    for campaign in sorted(summaries):
        _print_campaign(campaign, summaries[campaign], args.top, out)

    if args.metrics:
        status = _print_metrics(args.metrics, summaries, out)
        if status:
            return status
    if args.journal:
        status = _print_journal_join(args.journal, summaries, out)
        if status:
            return status
    return 0


if __name__ == "__main__":
    sys.exit(main())
