"""Trace and metrics exporters: torn-tail-safe files tools can open.

Two formats, both written one flushed line at a time so a SIGKILL tears
at most the final line (the same discipline as the JSONL result store
and the campaign journal):

* **Chrome trace-event JSON** — :class:`ChromeTraceWriter` emits the
  trace-event array format that Perfetto and ``chrome://tracing`` load
  directly: a ``[`` header line, then one complete (``"ph": "X"``)
  event object per line, comma-terminated.  The format explicitly
  tolerates a missing closing bracket, which is exactly what makes an
  append-only, kill-safe trace file *also* a valid trace file.
  :func:`read_trace` applies the journal's torn-tail classification:
  an unreadable final line is dropped, unreadable data mid-file raises.

* **Metrics JSONL** — :func:`append_metrics` appends one
  schema-versioned JSON object per snapshot (a whole
  :meth:`~repro.telemetry.metrics.MetricsRegistry.snapshot` keyed by
  campaign id); :func:`read_metrics` reads them back with the same
  torn-tail tolerance.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.exceptions import ConfigurationError
from repro.telemetry.spans import SpanRecord

__all__ = [
    "TELEMETRY_SCHEMA_VERSION",
    "ChromeTraceWriter",
    "span_to_trace_event",
    "write_trace",
    "read_trace",
    "append_metrics",
    "read_metrics",
]

#: Bump on any change to the metrics-dump record schema; readers skip
#: rows of other versions.
TELEMETRY_SCHEMA_VERSION = 1

_TRACE_HEADER = "[\n"


def span_to_trace_event(record: SpanRecord) -> Dict[str, Any]:
    """One span as a Chrome complete ("X") trace event.

    ``ts``/``dur`` are microseconds; ``pid``/``tid`` place the span on
    the viewer's process/thread rows, so worker-process spans of one
    campaign land on separate rows under the same trace.  The campaign
    correlation id travels in ``args.trace_id``.
    """
    args = {"trace_id": record.trace_id, "span_id": record.span_id}
    if record.parent_id is not None:
        args["parent_id"] = record.parent_id
    args.update(record.attrs)
    return {
        "name": record.name,
        "cat": "repro",
        "ph": "X",
        "ts": round(record.start_ts * 1e6, 3),
        "dur": round(record.duration * 1e6, 3),
        "pid": record.pid,
        "tid": record.tid,
        "args": args,
    }


class ChromeTraceWriter:
    """Incremental, kill-safe writer for one Chrome trace file.

    Each ``write`` is one flushed line; ``close`` is idempotent and the
    writer is a context manager.  The file is truncated on open — a
    trace describes one session, re-running overwrites it.
    """

    def __init__(self, path: Union[str, Path]):
        self._path = Path(path)
        self._path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._file = self._path.open("w", encoding="utf-8")
        self._file.write(_TRACE_HEADER)
        self._file.flush()

    @property
    def path(self) -> Path:
        return self._path

    def write(self, record: SpanRecord) -> None:
        line = json.dumps(span_to_trace_event(record), sort_keys=True) + ",\n"
        with self._lock:
            self._file.write(line)
            self._file.flush()

    def write_all(self, records) -> None:
        for record in records:
            self.write(record)

    def close(self) -> None:
        with self._lock:
            if not self._file.closed:
                self._file.close()

    def __enter__(self) -> "ChromeTraceWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def write_trace(path: Union[str, Path], records) -> Path:
    """Write ``records`` as one Chrome trace file; returns the path."""
    with ChromeTraceWriter(path) as writer:
        writer.write_all(records)
        return writer.path


def read_trace(path: Union[str, Path]) -> Tuple[Dict[str, Any], ...]:
    """Parse a Chrome trace file back into event dicts, validating it.

    Torn-tail classification matches the journal: an unreadable *final*
    line is a kill artefact and is dropped; unreadable data *followed by
    more data* is corruption and raises
    :class:`~repro.exceptions.ConfigurationError`, as does a file that
    is not a trace-event array at all.
    """
    path = Path(path)
    if not path.exists():
        raise ConfigurationError(f"no trace file at {path}")
    data = path.read_bytes()
    lines = data.split(b"\n")
    if not lines or lines[0].strip() not in (b"[", b"[]"):
        raise ConfigurationError(
            f"{path} is not a Chrome trace-event file (missing '[' header)"
        )
    events: List[Dict[str, Any]] = []
    consumed = len(lines[0]) + 1
    for line_number, raw_line in enumerate(lines[1:], start=2):
        stripped = raw_line.strip().rstrip(b",").strip()
        if stripped in (b"", b"]"):
            consumed += len(raw_line) + 1
            continue
        try:
            event = json.loads(stripped.decode("utf-8"))
            if not isinstance(event, dict) or "ph" not in event or "name" not in event:
                raise ConfigurationError(f"not a trace event: {event!r}")
        except (ValueError, ConfigurationError) as exc:
            if consumed + len(raw_line) + 1 <= len(data):
                raise ConfigurationError(
                    f"corrupt trace file {path}: unreadable event on line "
                    f"{line_number} ({exc})"
                ) from exc
            break  # torn final line: dropped, like the journal's
        events.append(event)
        consumed += len(raw_line) + 1
    return tuple(events)


# -- metrics dump -------------------------------------------------------------


def append_metrics(
    path: Union[str, Path],
    campaign: str,
    snapshot: Dict[str, Dict[str, Any]],
    *,
    extra: Optional[Dict[str, Any]] = None,
) -> Path:
    """Append one metrics snapshot (whole registry) for ``campaign``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    record = {
        "v": TELEMETRY_SCHEMA_VERSION,
        "type": "metrics",
        "campaign": campaign,
        "metrics": snapshot,
    }
    if extra:
        record.update(extra)
    with path.open("a", encoding="utf-8") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")
        handle.flush()
    return path


def read_metrics(path: Union[str, Path]) -> Tuple[Dict[str, Any], ...]:
    """Read a metrics JSONL dump (torn-tail-tolerant, version-filtered)."""
    path = Path(path)
    if not path.exists():
        raise ConfigurationError(f"no metrics dump at {path}")
    data = path.read_bytes()
    records: List[Dict[str, Any]] = []
    consumed = 0
    for line_number, raw_line in enumerate(data.split(b"\n"), start=1):
        stripped = raw_line.strip()
        if stripped:
            try:
                record = json.loads(stripped.decode("utf-8"))
                if not isinstance(record, dict) or "metrics" not in record:
                    raise ConfigurationError(f"not a metrics record: {record!r}")
                if record.get("v") == TELEMETRY_SCHEMA_VERSION:
                    records.append(record)
            except (ValueError, ConfigurationError) as exc:
                if consumed + len(raw_line) + 1 <= len(data):
                    raise ConfigurationError(
                        f"corrupt metrics dump {path}: unreadable record on "
                        f"line {line_number} ({exc})"
                    ) from exc
                break
        consumed += len(raw_line) + 1
    return tuple(records)
