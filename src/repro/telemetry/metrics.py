"""The metrics registry: named counters, gauges and bounded histograms.

One :class:`MetricsRegistry` per telemetry session; metrics are created
on first use (``registry.counter("scenarios_completed")``) and updated
under one registry-wide lock — updates arrive from the process
backend's event-drain thread and the caller's thread concurrently, and
campaign-scale update rates (one batch of updates per *scenario*, not
per step) make lock granularity irrelevant.

Determinism is the design constraint, mirroring
:class:`~repro.provenance.usage.ResourceUsage`: metrics fed from the
deterministic fields of the event stream (verdicts, steps, message
counters, cache decisions) have **bit-identical** count/sum/bin values
across recording policies and campaign backends, because the event
multiset is identical and counts and integer sums are order-independent.
Wall-clock metrics (scenario latency, queue depth over time) are
measurement, not outcome — they are flagged ``timing=True`` and
:meth:`MetricsRegistry.deterministic_snapshot` excludes them, which is
what the cross-backend equality tests pin.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any, Dict, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "DEFAULT_LATENCY_BOUNDS"]

#: Default histogram bounds for wall-clock seconds: sub-ms to minutes.
DEFAULT_LATENCY_BOUNDS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0,
)

#: Default bounds for per-scenario work volumes (steps, messages).
DEFAULT_VOLUME_BOUNDS = (1, 10, 50, 100, 500, 1_000, 5_000, 10_000, 50_000)


class Counter:
    """A monotonically increasing count (ints stay ints)."""

    __slots__ = ("name", "timing", "value", "_lock")

    def __init__(self, name: str, *, timing: bool, lock: threading.RLock):
        self.name = name
        self.timing = timing
        self.value = 0
        self._lock = lock

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name!r} cannot decrease (inc({amount}))"
            )
        with self._lock:
            self.value += amount

    def snapshot(self) -> Dict[str, Any]:
        return {"type": "counter", "timing": self.timing, "value": self.value}


class Gauge:
    """A value that goes up and down (queue depth, in-flight workers)."""

    __slots__ = ("name", "timing", "value", "_lock")

    def __init__(self, name: str, *, timing: bool, lock: threading.RLock):
        self.name = name
        self.timing = timing
        self.value: float = 0
        self._lock = lock

    def set(self, value) -> None:
        with self._lock:
            self.value = value

    def add(self, delta) -> None:
        with self._lock:
            self.value += delta

    def snapshot(self) -> Dict[str, Any]:
        return {"type": "gauge", "timing": self.timing, "value": self.value}


class Histogram:
    """A bounded histogram: fixed buckets, exact count/sum/min/max.

    ``bounds`` are the inclusive upper edges of the first ``len(bounds)``
    buckets; one overflow bucket catches everything beyond, so memory is
    fixed no matter how many observations arrive.  Feed only integers to
    a deterministic histogram — integer sums are bit-identical whatever
    the observation order, float sums are not.
    """

    __slots__ = ("name", "timing", "bounds", "bins", "count", "sum", "min", "max",
                 "_lock")

    def __init__(self, name: str, *, bounds: Sequence[float], timing: bool,
                 lock: threading.RLock):
        if not bounds or list(bounds) != sorted(bounds):
            raise ConfigurationError(
                f"histogram {name!r} needs sorted, non-empty bounds; "
                f"got {bounds!r}"
            )
        self.name = name
        self.timing = timing
        self.bounds: Tuple[float, ...] = tuple(bounds)
        self.bins = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._lock = lock

    def observe(self, value) -> None:
        with self._lock:
            # bisect_left on the sorted upper edges: bucket i holds
            # bounds[i-1] < value <= bounds[i]; the final bin overflows.
            self.bins[bisect_left(self.bounds, value)] += 1
            self.count += 1
            self.sum += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value

    def snapshot(self) -> Dict[str, Any]:
        return {
            "type": "histogram",
            "timing": self.timing,
            "bounds": list(self.bounds),
            "bins": list(self.bins),
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
        }


class MetricsRegistry:
    """Get-or-create registry of named metrics (thread-safe).

    Re-requesting a name returns the existing instance; requesting it as
    a different metric type (or with different bounds/timing) raises —
    silent divergence between writers would corrupt the aggregate.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._metrics: Dict[str, Any] = {}

    def _get_or_create(self, name: str, kind, **kwargs):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, kind):
                    raise ConfigurationError(
                        f"metric {name!r} already registered as "
                        f"{type(existing).__name__}, requested {kind.__name__}"
                    )
                return existing
            metric = kind(name, lock=self._lock, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, *, timing: bool = False) -> Counter:
        return self._get_or_create(name, Counter, timing=timing)

    def gauge(self, name: str, *, timing: bool = False) -> Gauge:
        return self._get_or_create(name, Gauge, timing=timing)

    def histogram(
        self,
        name: str,
        *,
        bounds: Sequence[float] = DEFAULT_VOLUME_BOUNDS,
        timing: bool = False,
    ) -> Histogram:
        return self._get_or_create(name, Histogram, bounds=bounds, timing=timing)

    # -- inspection --------------------------------------------------------

    def names(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._metrics))

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Every metric, timing ones included — what the exporter dumps."""
        with self._lock:
            return {name: metric.snapshot()
                    for name, metric in sorted(self._metrics.items())}

    def deterministic_snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Only the deterministic metrics, without machine-dependent fields.

        Two campaigns over the same scenarios — any recording policy,
        any backend — produce *equal* deterministic snapshots; the
        plumbing tests assert this with ``==``.
        """
        with self._lock:
            snapshot = {}
            for name, metric in sorted(self._metrics.items()):
                if metric.timing:
                    continue
                snapshot[name] = metric.snapshot()
            return snapshot
