"""One campaign's telemetry, tied together: config, session, worker half.

:class:`TelemetryConfig` is what a caller decides (capture phases?
sample how aggressively? export where?); :class:`TelemetrySession` is
the parent-process object that lives through one or more campaign runs,
owning the :class:`~repro.telemetry.metrics.MetricsRegistry`, the
collected :class:`~repro.telemetry.spans.SpanRecord`\\ s and the
exporters; :class:`WorkerTelemetry` is the small frozen picklable slice
of it that crosses into worker processes — campaign correlation id,
sampling stride, phase-capture flag — mirroring how
:class:`~repro.campaign.runner.ScenarioEvent`\\ s already carry
worker-side facts back.

**Sampling.**  Tracing every scenario of a 100k-scenario sweep would
produce a trace nobody can open; the session derives a stride from
``sample_threshold`` (``stride = ceil(total / threshold)``) and a
scenario is traced iff ``spec.derived_seed() % stride == 0``.  Because
the derived seed is a pure function of the scenario's identity, the
*same* scenarios are sampled whatever the backend, chunking or worker
placement — sampled traces are reproducible, not lucky.

Metrics are fed parent-side from the event stream, so their
deterministic fields (counts, integer sums, histogram bins over steps
and message volumes) are bit-identical across recording policies and
backends; wall-clock metrics are flagged ``timing`` and excluded from
:meth:`TelemetrySession.deterministic_snapshot`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.telemetry.export import ChromeTraceWriter, append_metrics
from repro.telemetry.metrics import (
    DEFAULT_LATENCY_BOUNDS,
    MetricsRegistry,
)
from repro.telemetry.spans import SpanRecord, Tracer

__all__ = ["TelemetryConfig", "WorkerTelemetry", "TelemetrySession"]


@dataclass(frozen=True)
class TelemetryConfig:
    """What to capture and where to ship it.

    Attributes
    ----------
    capture_phases:
        Record per-phase executor breakdowns inside sampled scenarios
        (scheduling / delivery / transition / recording).
    sample_threshold:
        Target number of traced scenarios per campaign; campaigns larger
        than this are sampled down by a deterministic stride.  ``0``
        disables sampling (trace everything).
    trace_path:
        Chrome trace-event file to write on :meth:`TelemetrySession.finish`
        (``None``: keep spans in memory only).
    metrics_path:
        Metrics JSONL dump to append on finish (``None``: in-memory only).
    """

    capture_phases: bool = True
    sample_threshold: int = 128
    trace_path: Optional[Union[str, Path]] = None
    metrics_path: Optional[Union[str, Path]] = None


@dataclass(frozen=True)
class WorkerTelemetry:
    """The picklable worker-side slice: who am I tracing for, how much.

    ``samples(spec)`` is the *only* sampling decision in the system —
    evaluated where the scenario runs, deterministic in the scenario's
    identity, so serial, chunked and process backends trace the same
    scenarios.

    The stride filter keeps a scenario iff its derived seed is divisible
    by the stride — nothing guarantees any seed of a *small* campaign
    is, and an all-misses campaign would ship an empty trace that the
    report CLI then summarises as if tracing had been off.
    ``ensure_samples`` closes that hole: when no spec passes the stride
    filter it pins ``force_seed`` to the first spec's derived seed, so
    every campaign traces at least one scenario — still deterministic
    in the spec list, so all backends agree on the forced choice.
    """

    campaign: str
    stride: int = 1
    capture_phases: bool = True
    force_seed: Optional[int] = None

    def samples(self, spec) -> bool:
        if self.stride <= 1:
            return True
        seed = spec.derived_seed()
        return seed % self.stride == 0 or seed == self.force_seed

    def ensure_samples(self, specs) -> "WorkerTelemetry":
        """A telemetry slice guaranteed to sample at least one of ``specs``."""
        if self.stride <= 1 or not specs:
            return self
        if any(self.samples(spec) for spec in specs):
            return self
        return replace(self, force_seed=specs[0].derived_seed())


class TelemetrySession:
    """Parent-side telemetry for campaign runs (thread-safe).

    Wire it into a :class:`~repro.store.caching.CachingRunner` via its
    ``telemetry=`` parameter; standalone use follows the same protocol:
    ``begin(campaign_id, total)`` → feed events to :meth:`on_event` →
    ``finish()``.  Events arrive concurrently (the process backend's
    drain thread plus the caller's thread); all mutation is locked.
    """

    def __init__(self, config: Optional[TelemetryConfig] = None):
        self.config = config or TelemetryConfig()
        self.metrics = MetricsRegistry()
        self.campaign: Optional[str] = None
        self._lock = threading.Lock()
        self._spans: List[SpanRecord] = []
        self._worker: Optional[WorkerTelemetry] = None
        self._tracer: Optional[Tracer] = None
        self._campaign_span = None
        self._total = 0
        self._summary: Optional[Dict[str, Any]] = None

    # -- lifecycle ---------------------------------------------------------

    def begin(self, campaign: str, total: int) -> None:
        """Start one campaign: fix the correlation id and sampling stride."""
        threshold = self.config.sample_threshold
        stride = 1 if threshold <= 0 or total <= threshold else -(-total // threshold)
        with self._lock:
            self.campaign = campaign
            self._total = total
            self._worker = WorkerTelemetry(
                campaign=campaign,
                stride=stride,
                capture_phases=self.config.capture_phases,
            )
            self._tracer = Tracer(trace_id=campaign, capture_phases=False)
            self._campaign_span = self._tracer.start_span(
                "campaign", {"total": total, "stride": stride})
            self._summary = None

    def worker_telemetry(self) -> Optional[WorkerTelemetry]:
        """The slice to hand to :meth:`CampaignRunner.run(telemetry=...)`."""
        return self._worker

    # -- the event stream --------------------------------------------------

    def on_event(self, event) -> None:
        """Ingest one :class:`~repro.campaign.runner.ScenarioEvent`.

        Deterministic fields feed deterministic metrics; wall-clock
        fields feed ``timing`` metrics; any spans the worker attached
        are collected for export.
        """
        m = self.metrics
        m.counter("scenarios_completed").inc()
        if event.cached:
            m.counter("scenarios_cached").inc()
        m.counter(f"verdict_{event.verdict}").inc()
        usage = event.usage
        if usage is not None:
            m.counter("steps_total").inc(usage.steps)
            m.counter("messages_sent_total").inc(usage.messages_sent)
            m.counter("messages_delivered_total").inc(usage.messages_delivered)
            m.histogram("scenario_steps").observe(usage.steps)
            m.histogram("scenario_messages_sent").observe(usage.messages_sent)
            if usage.steps:
                m.histogram("messages_per_step").observe(
                    usage.messages_sent // usage.steps)
        m.histogram(
            "scenario_seconds", bounds=DEFAULT_LATENCY_BOUNDS, timing=True,
        ).observe(event.seconds)
        with self._lock:
            depth = self._total - self.metrics.counter("scenarios_completed").value
        m.gauge("queue_depth", timing=True).set(max(0, depth))
        spans: Tuple[SpanRecord, ...] = getattr(event, "spans", ())
        if spans:
            with self._lock:
                self._spans.extend(spans)

    # -- inspection --------------------------------------------------------

    def spans(self) -> Tuple[SpanRecord, ...]:
        with self._lock:
            return tuple(self._spans)

    def cache_hit_rate(self) -> float:
        completed = self.metrics.counter("scenarios_completed").value
        if not completed:
            return 0.0
        return self.metrics.counter("scenarios_cached").value / completed

    def deterministic_snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Counts/sums only — bit-identical across policies and backends."""
        return self.metrics.deterministic_snapshot()

    def record_faults(self, fault_stats: Dict[str, int], *,
                      store_write_failures: int = 0) -> None:
        """Record the supervisor's fault counters for this campaign.

        Only non-zero counters are registered, and all of them as
        ``timing=True``: how often infrastructure failed is measurement,
        not outcome, so the counters must not perturb the cross-backend
        equality of :meth:`deterministic_snapshot` (worker deaths are
        scheduling accidents even when injected deterministically).
        """
        for name, value in fault_stats.items():
            if value:
                self.metrics.counter(name, timing=True).inc(int(value))
        if store_write_failures:
            self.metrics.counter(
                "store_write_failures", timing=True).inc(store_write_failures)

    def record_dispatch(self, dispatch_stats: Dict[str, Any], *,
                        store_io: Optional[Dict[str, int]] = None) -> None:
        """Record what shipping the campaign cost (wire bytes, queue wait).

        ``dispatch_stats`` is a
        :meth:`~repro.faults.supervisor.DispatchStats.as_dict` payload;
        ``store_io`` the store's :meth:`~repro.store.base.ResultStore.io_stats`.
        Everything lands as ``timing=True`` ``dispatch:*`` counters —
        dispatch cost is orchestration measurement, not outcome, so it
        stays out of :meth:`deterministic_snapshot` exactly like the
        fault counters.  A ``dispatch:summary`` span carries the same
        numbers into the exported trace; in-process campaigns (nothing
        shipped) record nothing at all.
        """
        shipped = int(dispatch_stats.get("tasks_shipped", 0) or 0)
        scaled = {
            name: (int(round(value * 1_000_000))
                   if name.endswith("_seconds") else int(value))
            for name, value in dispatch_stats.items()
            if isinstance(value, (int, float))
        }
        for name, value in scaled.items():
            metric = (f"dispatch:{name[:-len('_seconds')]}_micros"
                      if name.endswith("_seconds") else f"dispatch:{name}")
            if value:
                self.metrics.counter(metric, timing=True).inc(value)
        if shipped:
            self.metrics.histogram(
                "dispatch:bytes_per_task", timing=True,
            ).observe(dispatch_stats.get("wire_bytes", 0) // shipped)
        if store_io:
            for name, value in store_io.items():
                if isinstance(value, int) and value:
                    self.metrics.counter(
                        f"dispatch:store_{name}", timing=True).inc(value)
        if self._tracer is not None and (shipped or store_io):
            attrs: Dict[str, Any] = {
                k: v for k, v in dispatch_stats.items()
                if isinstance(v, (int, float))
            }
            if store_io:
                attrs.update({f"store_{k}": v for k, v in store_io.items()
                              if isinstance(v, int)})
            span = self._tracer.start_span("dispatch:summary", attrs)
            self._tracer.end_span(span)

    # -- export ------------------------------------------------------------

    def finish(self, stats: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        """Close the campaign span and write the configured exporters.

        Returns a summary dict (span/metric counts, export paths).
        Idempotent per ``begin``: :class:`~repro.store.caching.CachingRunner`
        finishes the session at the end of each ``run``, so a caller
        asking for the summary afterwards gets the cached one instead of
        a duplicate export.
        """
        if self._summary is not None:
            return self._summary
        if self._tracer is not None and self._campaign_span is not None:
            if stats:
                self._campaign_span.attrs.update(
                    {k: v for k, v in stats.items()
                     if isinstance(v, (int, float, str, bool))})
            self._tracer.end_span(self._campaign_span)
            self._campaign_span = None
            with self._lock:
                self._spans.extend(self._tracer.drain())

        summary: Dict[str, Any] = {
            "campaign": self.campaign,
            "spans": len(self.spans()),
            "metrics": len(self.metrics.names()),
            "cache_hit_rate": round(self.cache_hit_rate(), 4),
        }
        if self.config.trace_path is not None:
            with ChromeTraceWriter(self.config.trace_path) as writer:
                writer.write_all(self.spans())
            summary["trace_path"] = str(writer.path)
        if self.config.metrics_path is not None and self.campaign is not None:
            path = append_metrics(
                self.config.metrics_path, self.campaign, self.metrics.snapshot(),
                extra={"stats": dict(stats) if stats else {}},
            )
            summary["metrics_path"] = str(path)
        self._summary = summary
        return summary
