"""Structured logging facade: campaign-aware stdlib logging.

Every component that used to ``print`` to an ad-hoc stream now logs
through here: one ``repro`` logger hierarchy, a formatter that renders
the campaign/scenario correlation ids as structured fields, and a
defaults filter so records logged *without* those ids still format
(as ``-``) instead of raising ``KeyError`` inside the logging module.

Two modes:

* :func:`configure` — attach the shared stderr (or custom-stream)
  handler to the ``repro`` root logger, idempotently; library code then
  just calls :func:`get_logger` and logs.
* :func:`stream_logger` — a private, non-propagating logger bound to an
  explicit stream with a bare ``%(message)s`` format.  This is the
  test/CLI escape hatch :class:`~repro.store.progress.LogProgressReporter`
  keeps: handing it an ``io.StringIO`` captures exactly the lines it
  always emitted, no global logging state touched.

Correlation ids attach per call (``extra={"campaign": ...}``) or per
logger via :func:`with_context`, which returns an adapter stamping every
record — the worker-process pattern: one adapter per campaign, shared by
everything that logs inside it.
"""

from __future__ import annotations

import itertools
import logging
import sys
from typing import Any, Dict, Optional, TextIO

__all__ = [
    "DEFAULT_FORMAT",
    "get_logger",
    "configure",
    "stream_logger",
    "with_context",
]

#: The shared handler's format: correlation ids as structured fields.
DEFAULT_FORMAT = (
    "%(asctime)s %(levelname)s %(name)s "
    "[campaign=%(campaign)s scenario=%(scenario)s] %(message)s"
)

_ROOT_NAME = "repro"
_stream_ids = itertools.count(1)


class _ContextDefaults(logging.Filter):
    """Backfill missing correlation fields so the format never KeyErrors."""

    def filter(self, record: logging.LogRecord) -> bool:
        if not hasattr(record, "campaign"):
            record.campaign = "-"
        if not hasattr(record, "scenario"):
            record.scenario = "-"
        return True


def get_logger(name: str = "") -> logging.Logger:
    """A logger under the ``repro`` hierarchy (``get_logger("campaign")``)."""
    return logging.getLogger(f"{_ROOT_NAME}.{name}" if name else _ROOT_NAME)


def configure(
    *,
    stream: Optional[TextIO] = None,
    level: int = logging.INFO,
    fmt: str = DEFAULT_FORMAT,
    force: bool = False,
) -> logging.Logger:
    """Attach the shared handler to the ``repro`` root logger, once.

    Subsequent calls are no-ops unless ``force`` is set (which replaces
    the existing handlers — what tests use to re-point the stream).
    The root logger does not propagate, so embedding applications keep
    full control of their own logging tree.
    """
    root = get_logger()
    if root.handlers and not force:
        return root
    for handler in list(root.handlers):
        root.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(logging.Formatter(fmt))
    handler.addFilter(_ContextDefaults())
    root.addHandler(handler)
    root.setLevel(level)
    root.propagate = False
    return root


def stream_logger(
    stream: TextIO,
    *,
    level: int = logging.INFO,
    fmt: str = "%(message)s",
) -> logging.Logger:
    """A private logger writing plain lines to exactly ``stream``.

    Each call returns a fresh, uniquely named, non-propagating logger,
    so two reporters with two streams never interleave handlers.
    """
    logger = logging.getLogger(f"{_ROOT_NAME}._stream.{next(_stream_ids)}")
    logger.propagate = False
    logger.setLevel(level)
    handler = logging.StreamHandler(stream)
    handler.setFormatter(logging.Formatter(fmt))
    handler.addFilter(_ContextDefaults())
    logger.addHandler(handler)
    return logger


class _ContextAdapter(logging.LoggerAdapter):
    """Stamps its context onto every record, merging per-call extras."""

    def process(self, msg: str, kwargs: Dict[str, Any]):
        extra = dict(self.extra)
        extra.update(kwargs.get("extra") or {})
        kwargs["extra"] = extra
        return msg, kwargs


def with_context(
    logger: logging.Logger,
    *,
    campaign: Optional[str] = None,
    scenario: Optional[str] = None,
) -> logging.LoggerAdapter:
    """Bind correlation ids to a logger: every record carries them."""
    context: Dict[str, Any] = {}
    if campaign is not None:
        context["campaign"] = campaign
    if scenario is not None:
        context["scenario"] = scenario
    return _ContextAdapter(logger, context)
