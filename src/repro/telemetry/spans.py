"""Hierarchical spans: where a campaign's time actually goes.

A :class:`Tracer` collects :class:`SpanRecord`\\ s — plain, picklable
"this named thing took this long" facts with parent/child structure —
for one traced unit of work (typically one scenario).  Spans nest via a
per-thread stack, so ``tracer.span("scenario")`` around a scenario and
``tracer.span("decision")`` inside it produce the correct hierarchy
without any explicit plumbing.

The tracer is *ambient*: :func:`activate` installs it for the current
thread and :func:`current_tracer` retrieves it (``None`` when telemetry
is off, which is the default).  This is what keeps the executor's hot
path hot — :func:`~repro.simulation.executor.execute` fetches the
ambient tracer **once** per execution, and with no tracer active the
only per-step residue is an ``if phases is not None`` check on a local:
no allocation, no call, no dict lookup.

Per-step phase attribution uses a :class:`PhaseAccumulator` instead of
real per-step spans: opening four spans per executor step would distort
exactly the loop being measured, so the executor calls
:meth:`PhaseAccumulator.lap` at its phase boundaries and the accumulated
totals are emitted as one aggregate child span per phase
(``phase:scheduling``, ``phase:delivery``, …) when the execution ends.

Timestamps: a span's *position* on the timeline is wall-clock
(``time.time`` — comparable across worker processes), its *duration* is
monotonic (``time.perf_counter`` — immune to clock steps).  This module
imports only the stdlib, so it sits below every other layer of the
package and both the simulation engine and the campaign runner may use
it freely.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Mapping, Optional, Tuple

__all__ = [
    "SpanRecord",
    "PhaseAccumulator",
    "Tracer",
    "activate",
    "deactivate",
    "activated",
    "current_tracer",
    "span",
]

#: The executor's per-step phases, in loop order.  Time between two lap
#: points is attributed to the later point's phase.
EXECUTE_PHASES = ("scheduling", "delivery", "transition", "recording")


@dataclass(frozen=True)
class SpanRecord:
    """One finished span: plain data, picklable across process boundaries.

    ``trace_id`` is the correlation id of the whole trace (the campaign
    id, for campaign-driven tracing); ``span_id``/``parent_id`` encode
    the hierarchy *within one process* (ids are unique per tracer, and
    tracers are per-scenario, so cross-process collisions cannot
    conflate unrelated spans of one trace file — pid disambiguates).
    """

    name: str
    trace_id: str
    span_id: int
    parent_id: Optional[int]
    pid: int
    tid: int
    start_ts: float  #: wall-clock seconds (``time.time``) at span start
    duration: float  #: monotonic seconds (``time.perf_counter`` delta)
    attrs: Mapping[str, Any] = field(default_factory=dict)


class _OpenSpan:
    """A span that has started but not ended (mutable, tracer-internal)."""

    __slots__ = ("name", "span_id", "parent_id", "start_ts", "start_perf", "attrs")

    def __init__(self, name: str, span_id: int, parent_id: Optional[int],
                 attrs: Dict[str, Any]):
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.start_ts = time.time()
        self.start_perf = time.perf_counter()
        self.attrs = attrs


class PhaseAccumulator:
    """Per-phase time totals over one executor loop, one lap at a time.

    ``lap(phase)`` attributes the time since the previous lap (or since
    construction) to ``phase``.  The accumulator is deliberately dumb —
    two perf-counter reads and a dict update per lap — because it runs
    inside the measured loop.
    """

    __slots__ = ("_last", "_phases")

    def __init__(self) -> None:
        self._last = time.perf_counter()
        self._phases: Dict[str, List[float]] = {}

    def lap(self, phase: str) -> None:
        now = time.perf_counter()
        entry = self._phases.get(phase)
        if entry is None:
            self._phases[phase] = [now - self._last, 1]
        else:
            entry[0] += now - self._last
            entry[1] += 1
        self._last = now

    def totals(self) -> Tuple[Tuple[str, float, int], ...]:
        """``(phase, seconds, laps)`` triples in first-lap order."""
        return tuple(
            (name, entry[0], int(entry[1])) for name, entry in self._phases.items()
        )


class Tracer:
    """Collects spans for one traced unit of work (thread-safe).

    A tracer is cheap to construct; campaign workers build one per
    *sampled* scenario and ship its drained records back to the parent
    on the scenario's event.  The span stack is per-thread, so a tracer
    shared across the drain thread and the caller's thread never
    corrupts its hierarchy.
    """

    def __init__(self, trace_id: str = "", capture_phases: bool = True):
        self.trace_id = trace_id
        self.capture_phases = capture_phases
        self._lock = threading.Lock()
        self._records: List[SpanRecord] = []
        self._stack = threading.local()
        self._ids = itertools.count(1)

    # -- the span stack ----------------------------------------------------

    def _stack_items(self) -> List[_OpenSpan]:
        items = getattr(self._stack, "items", None)
        if items is None:
            items = self._stack.items = []
        return items

    def start_span(self, name: str, attrs: Optional[Dict[str, Any]] = None) -> _OpenSpan:
        stack = self._stack_items()
        parent_id = stack[-1].span_id if stack else None
        opened = _OpenSpan(name, next(self._ids), parent_id, dict(attrs or {}))
        stack.append(opened)
        return opened

    def end_span(self, opened: _OpenSpan) -> Optional[SpanRecord]:
        """End ``opened``, recording it; abandoned children are dropped.

        An exception inside a traced region can leave child spans open
        (the executor does not wrap its loop in try/finally — the error
        path is not the measured path).  Ending an ancestor pops and
        discards them, so the stack self-heals instead of corrupting the
        hierarchy of later spans.
        """
        duration = time.perf_counter() - opened.start_perf
        stack = self._stack_items()
        while stack:
            if stack.pop() is opened:
                record = SpanRecord(
                    name=opened.name,
                    trace_id=self.trace_id,
                    span_id=opened.span_id,
                    parent_id=opened.parent_id,
                    pid=os.getpid(),
                    tid=threading.get_ident(),
                    start_ts=opened.start_ts,
                    duration=duration,
                    attrs=opened.attrs,
                )
                with self._lock:
                    self._records.append(record)
                return record
        return None  # already discarded by an ancestor's end_span

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[_OpenSpan]:
        opened = self.start_span(name, attrs)
        try:
            yield opened
        finally:
            self.end_span(opened)

    # -- executor integration ----------------------------------------------

    def phase_accumulator(self) -> Optional[PhaseAccumulator]:
        """A fresh accumulator, or ``None`` when phase capture is off."""
        return PhaseAccumulator() if self.capture_phases else None

    def finish_with_phases(
        self,
        opened: _OpenSpan,
        phases: Optional[PhaseAccumulator],
        **attrs: Any,
    ) -> Optional[SpanRecord]:
        """End an execute-level span and emit its aggregate phase children.

        Phase children are laid out back to back from the parent's start
        so trace viewers render them as one flame row; each carries its
        lap count, making "seconds per step per phase" a one-division
        query in the report.
        """
        opened.attrs.update(attrs)
        record = self.end_span(opened)
        if record is None or phases is None:
            return record
        offset = 0.0
        children = []
        for name, seconds, laps in phases.totals():
            children.append(SpanRecord(
                name=f"phase:{name}",
                trace_id=self.trace_id,
                span_id=next(self._ids),
                parent_id=record.span_id,
                pid=record.pid,
                tid=record.tid,
                start_ts=record.start_ts + offset,
                duration=seconds,
                attrs={"laps": laps},
            ))
            offset += seconds
        with self._lock:
            self._records.extend(children)
        return record

    # -- harvesting --------------------------------------------------------

    def records(self) -> Tuple[SpanRecord, ...]:
        with self._lock:
            return tuple(self._records)

    def drain(self) -> Tuple[SpanRecord, ...]:
        """Return all records collected so far and forget them."""
        with self._lock:
            records = tuple(self._records)
            self._records.clear()
        return records


# -- the ambient tracer -------------------------------------------------------

_AMBIENT = threading.local()


def activate(tracer: Tracer) -> Tracer:
    """Install ``tracer`` as the current thread's ambient tracer."""
    _AMBIENT.tracer = tracer
    return tracer


def deactivate() -> None:
    """Remove the current thread's ambient tracer (telemetry off again)."""
    _AMBIENT.tracer = None


def current_tracer() -> Optional[Tracer]:
    """The ambient tracer, or ``None`` — the telemetry-off default."""
    return getattr(_AMBIENT, "tracer", None)


@contextmanager
def activated(tracer: Tracer) -> Iterator[Tracer]:
    """``with activated(Tracer(...)) as t:`` — scoped ambient tracing."""
    previous = current_tracer()
    activate(tracer)
    try:
        yield tracer
    finally:
        _AMBIENT.tracer = previous


def span(name: str, **attrs: Any):
    """A span on the ambient tracer, or a no-op when telemetry is off.

    The convenience for instrumenting code outside the executor's hot
    loop (scenario kinds wrap their decision/SCC evaluation in one);
    costs a single function call and a ``nullcontext`` when disabled.
    """
    tracer = current_tracer()
    if tracer is None:
        return nullcontext()
    return tracer.span(name, **attrs)
