"""Declarative scenario grids.

A :class:`ScenarioGrid` describes a cartesian product of campaign axes —
scenario kinds, system sizes ``n``, failure bounds ``f``, agreement
parameters ``k``, schedulers, seeds and crash schedules — and compiles it
into a flat, deduplicated tuple of
:class:`~repro.campaign.spec.ScenarioSpec`.  Compilation is where a
campaign fails fast: every ``(n, f, k)`` point is validated before a
single execution starts, so an invalid grid raises
:class:`repro.exceptions.ConfigurationError` instead of poisoning a
thousand-scenario run halfway through.

The ``f`` and ``k`` axes may depend on ``n`` (the Theorem 8 sweep uses
the full ranges ``1..n-1``): pass a callable of ``n``, or ``None`` for
the full range.  ``point_filter`` restricts the grid to a region (for
example one side of a solvability border), and ``crash_sets`` expands
every point into one scenario per planned crash schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Hashable, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.campaign.spec import (
    DETERMINISTIC_SCHEDULERS,
    CrashSchedule,
    ScenarioSpec,
    normalize_crashes,
    normalize_params,
)
from repro.exceptions import ConfigurationError

__all__ = ["ScenarioGrid"]

#: An integer axis: ``None`` (the full range ``1..n-1``), an explicit
#: sequence, or a callable of ``n`` returning the values for that ``n``.
Axis = Union[None, Sequence[int], Callable[[int], Iterable[int]]]


def _resolve_axis(axis: Axis, n: int) -> Tuple[int, ...]:
    if axis is None:
        return tuple(range(1, n))
    if callable(axis):
        return tuple(axis(n))
    return tuple(axis)


@dataclass(frozen=True)
class ScenarioGrid:
    """A cartesian product of campaign axes.

    Attributes
    ----------
    kinds:
        Registered scenario-kind names; one scenario per kind per point.
    n_values:
        System sizes to sweep.
    f_values / k_values:
        Failure-bound / agreement-parameter axes (see :data:`Axis`);
        ``None`` means the full range ``1..n-1``.
    schedulers:
        Scheduler names.  Deterministic schedulers ignore the seed axis
        (their seed is normalised to 0, and the duplicates are dropped).
    seeds:
        Grid seeds combined with seeded schedulers.
    crash_sets:
        Optional ``(n, f) -> iterable of crash schedules``; every schedule
        becomes one scenario (a mapping ``pid -> time`` or an iterable of
        initially dead ids).  ``None`` runs each point failure-free.
    point_filter:
        Optional predicate ``(n, f, k) -> bool`` restricting the grid.
    max_steps:
        Step budget of every compiled scenario.
    params:
        Extra kind-specific knobs attached to every scenario.
    recording:
        Recording-policy name applied to every compiled scenario
        (``"full"``, ``"decisions-only"`` or ``"verdict-only"``); the
        policy changes what the executed runs retain, never their
        verdicts.
    """

    kinds: Tuple[str, ...]
    n_values: Tuple[int, ...]
    f_values: Axis = None
    k_values: Axis = None
    schedulers: Tuple[str, ...] = ("round-robin",)
    seeds: Tuple[int, ...] = (0,)
    crash_sets: Optional[Callable[[int, int], Iterable[CrashSchedule]]] = None
    point_filter: Optional[Callable[[int, int, int], bool]] = None
    max_steps: int = 10_000
    params: Tuple[Tuple[str, Hashable], ...] = ()
    recording: str = "full"

    def __post_init__(self) -> None:
        object.__setattr__(self, "kinds", tuple(self.kinds))
        object.__setattr__(self, "n_values", tuple(int(n) for n in self.n_values))
        if not callable(self.f_values) and self.f_values is not None:
            object.__setattr__(self, "f_values", tuple(int(f) for f in self.f_values))
        if not callable(self.k_values) and self.k_values is not None:
            object.__setattr__(self, "k_values", tuple(int(k) for k in self.k_values))
        object.__setattr__(self, "schedulers", tuple(self.schedulers))
        object.__setattr__(self, "seeds", tuple(int(s) for s in self.seeds))
        object.__setattr__(self, "params", normalize_params(self.params))
        if not self.kinds:
            raise ConfigurationError("a grid needs at least one scenario kind")
        if not self.n_values:
            raise ConfigurationError("a grid needs at least one value of n")
        if not self.schedulers:
            raise ConfigurationError("a grid needs at least one scheduler")
        if not self.seeds:
            raise ConfigurationError("a grid needs at least one seed")
        object.__setattr__(self, "_compiled", None)

    def __len__(self) -> int:
        """Number of compiled scenarios (compiles on first use)."""
        return len(self.compile())

    def compile(self) -> Tuple[ScenarioSpec, ...]:
        """Expand the grid into a flat, deduplicated tuple of specs.

        Invalid parameter points (``n < 1``, ``f`` outside ``0..n-1``,
        ``k < 1``, crash ids outside the system) raise
        :class:`repro.exceptions.ConfigurationError` — before anything
        executes.  Scenarios that normalise to the same spec (for example
        a deterministic scheduler combined with several seeds) are
        deduplicated, preserving first-occurrence order.

        The expansion is memoised on the (frozen) grid: the caching layer
        and the runner both compile, and a large grid should only pay the
        cartesian expansion once.  ``crash_sets``/``point_filter``
        callables are therefore expected to be pure.
        """
        if self._compiled is None:
            object.__setattr__(self, "_compiled", self._compile())
        return self._compiled

    def _compile(self) -> Tuple[ScenarioSpec, ...]:
        specs: List[ScenarioSpec] = []
        seen: set = set()
        for n in self.n_values:
            if n < 1:
                raise ConfigurationError(f"n must be >= 1, got n={n}")
            for f in _resolve_axis(self.f_values, n):
                schedules = (
                    tuple(self.crash_sets(n, f)) if self.crash_sets is not None else ((),)
                )
                for k in _resolve_axis(self.k_values, n):
                    if self.point_filter is not None and not self.point_filter(n, f, k):
                        continue
                    for kind in self.kinds:
                        for scheduler in self.schedulers:
                            for seed in self.seeds:
                                if scheduler in DETERMINISTIC_SCHEDULERS:
                                    seed = 0
                                for schedule in schedules:
                                    spec = ScenarioSpec(
                                        kind=kind,
                                        n=n,
                                        f=f,
                                        k=k,
                                        scheduler=scheduler,
                                        seed=seed,
                                        crashes=normalize_crashes(schedule, n),
                                        max_steps=self.max_steps,
                                        params=self.params,
                                        recording=self.recording,
                                    )
                                    if spec not in seen:
                                        seen.add(spec)
                                        specs.append(spec)
        return tuple(specs)
