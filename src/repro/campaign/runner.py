"""Campaign execution: serial, chunked and multiprocessing backends.

:class:`CampaignRunner` executes a flat list of scenario specs (or a
:class:`~repro.campaign.grid.ScenarioGrid`, which it compiles first) and
aggregates the outcomes into a :class:`CampaignResult`.  Three backends
share one code path:

* ``"serial"`` — one scenario after the other in the calling process;
  the reference backend every other backend must agree with.
* ``"chunked"`` — the same executions, batched through the exact chunk
  machinery the process backend uses; useful for testing the chunking
  logic and for coarse progress accounting without any forking.
* ``"process"`` — a ``multiprocessing`` pool of worker processes, each
  executing whole chunks of specs.  Because specs are plain data and
  every seeded scheduler derives its RNG stream from the scenario's
  identity (:meth:`ScenarioSpec.derived_seed`), the outcome of a
  scenario does not depend on which worker runs it or in which order —
  so all backends produce **identical** :class:`CampaignResult`\\ s
  (timing metadata aside, which is excluded from equality).

:meth:`CampaignRunner.run` additionally accepts three hooks that the
persistent store (:mod:`repro.store`) builds on:

* ``on_outcome`` — called in the **calling** process as soon as an
  outcome exists (per scenario for the in-process backends, per
  completed chunk for the process backend).  This is what lets a store
  persist results incrementally, so a killed campaign resumes from its
  last completed scenario instead of from scratch.
* ``progress`` — a callable receiving one :class:`ScenarioEvent` per
  finished scenario.  Under the process backend the events are produced
  *worker-side* and shipped over a queue, so a progress reporter sees
  pool-wide liveness (including which worker pid ran what), not just
  chunk completions.
* ``should_skip`` — consulted once per scenario at dispatch time; a
  ``True`` return drops the scenario from the campaign.  Adaptive
  budgets (:class:`repro.store.EarlyStopPolicy`) use this to stop
  sampling a sweep point once its outcome is certified.

The process backend dispatches chunks in waves (at most ``2 × workers``
outstanding) instead of one bulk ``pool.map``: results arrive as they
complete, which keeps ``on_outcome`` persistence incremental and lets
``should_skip`` see the outcomes observed so far when deciding whether a
later chunk still needs to run.  Dispatch runs under the
:class:`repro.faults.supervisor.Supervisor`: every wait is bounded,
in-flight chunks carry deadlines, dead or hung workers get their work
re-queued under the runner's :class:`~repro.faults.plan.RetryPolicy`,
persistently failing chunks are bisected down to the guilty spec (which
is quarantined into an ``"error"`` outcome), and a broken pool degrades
to in-process execution instead of aborting.  The optional
``CampaignRunner(faults=FaultPlan(...))`` injects deterministic chaos
through the same machinery — see :mod:`repro.faults`.

The executor is CPU-bound pure Python, so the process backend is the one
that scales with cores; there is deliberately no thread backend (the GIL
would serialise it anyway).
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.campaign import codec
from repro.campaign.costmodel import CostModel, plan_chunks
from repro.campaign.grid import ScenarioGrid
from repro.campaign.scenarios import get_kind
from repro.campaign.spec import ScenarioOutcome, ScenarioSpec
from repro.campaign.wire import encode_chunk, ensure_specs
from repro.exceptions import ConfigurationError
from repro.faults.plan import FaultPlan, FaultStats, RetryPolicy
from repro.faults.supervisor import DispatchStats, Supervisor
from repro.provenance.usage import ResourceUsage
from repro.telemetry.logs import get_logger
from repro.telemetry.session import WorkerTelemetry
from repro.telemetry.spans import SpanRecord, Tracer, activated

__all__ = ["CampaignRunner", "CampaignResult", "ScenarioEvent", "run_scenario"]

BACKENDS = ("serial", "chunked", "process")

#: Format tag of :meth:`CampaignResult.to_json` payloads.
RESULT_JSON_FORMAT = 1

#: Hook signatures accepted by :meth:`CampaignRunner.run`.
OutcomeHook = Callable[[ScenarioOutcome, float], None]
ProgressHook = Callable[["ScenarioEvent"], None]
SkipHook = Callable[[ScenarioSpec], bool]


@dataclass(frozen=True)
class ScenarioEvent:
    """One scenario finished somewhere in the campaign.

    Events are produced where the scenario ran (worker-side under the
    process backend) and are plain picklable data, so they can cross the
    process boundary on a queue.  ``cached`` marks events synthesised by
    :class:`repro.store.CachingRunner` for store hits, which never reach
    a worker.  ``fingerprint`` is the scenario's store digest and
    ``usage`` its :class:`~repro.provenance.usage.ResourceUsage` — both
    are what the campaign journal persists per scenario.  ``spans`` are
    the telemetry spans recorded while the scenario ran (empty unless a
    :class:`~repro.telemetry.session.WorkerTelemetry` sampled it):
    worker-side span buffers ship back on the event exactly like every
    other worker-side fact, so pool-wide traces need no extra channel.
    """

    label: str
    verdict: str
    seconds: float
    worker_pid: int
    cached: bool = False
    fingerprint: str = ""
    usage: Optional[ResourceUsage] = None
    spans: Tuple[SpanRecord, ...] = ()


def run_scenario(spec: ScenarioSpec) -> ScenarioOutcome:
    """Execute one scenario, capturing failures as ``"error"`` outcomes.

    A raising scenario never aborts a campaign: the exception is folded
    into the outcome so that the other scenarios still run and the
    aggregation shows exactly which points broke.
    """
    kind = get_kind(spec.kind)
    try:
        return kind(spec)
    except Exception as exc:  # noqa: BLE001 - campaign robustness by design
        return ScenarioOutcome.from_error(spec, exc)


_log = get_logger("campaign.runner")

#: Worker-side event sink.  ``None`` in the parent; pool workers set it to
#: ``queue.put`` via :func:`_init_worker` so that ``_run_batch`` streams
#: one event per finished scenario back to the reporter.
_WORKER_EVENT_SINK: Optional[ProgressHook] = None

#: The raw worker-side event queue (kept so an injected crash can flush
#: its feeder thread before SIGKILLing the worker — a kill mid-write
#: would wedge the queue for every other worker).
_WORKER_EVENT_QUEUE = None

#: Worker-side telemetry slice (campaign id + sampling stride).  ``None``
#: unless the campaign runs with telemetry; installed alongside the event
#: sink, because spans travel back on the same events.
_WORKER_TELEMETRY: Optional[WorkerTelemetry] = None

#: Worker-side fault plan.  ``None`` in the parent and on fault-free
#: campaigns; pool workers receive the campaign's plan at fork time.
_WORKER_FAULTS: Optional[FaultPlan] = None

#: ``True`` only inside pool worker processes.  Gates the worker-level
#: fault kinds (crash/hang): injecting them into the calling process
#: would take the campaign down instead of exercising the supervisor.
_IN_POOL_WORKER = False


def _init_worker(event_queue, telemetry: Optional[WorkerTelemetry] = None,
                 faults: Optional[FaultPlan] = None) -> None:
    """Pool initializer: install this worker's sinks, slice and chaos."""
    global _WORKER_EVENT_SINK, _WORKER_EVENT_QUEUE, _WORKER_TELEMETRY
    global _WORKER_FAULTS, _IN_POOL_WORKER
    _WORKER_EVENT_QUEUE = event_queue
    _WORKER_EVENT_SINK = event_queue.put if event_queue is not None else None
    _WORKER_TELEMETRY = telemetry
    _WORKER_FAULTS = faults
    _IN_POOL_WORKER = True


def _flush_worker_queue() -> None:
    """Drain this worker's event-queue feeder (pre-crash hygiene).

    An injected crash SIGKILLs the worker; if its queue feeder thread
    were mid-write, the kill could leave the shared pipe's write lock
    held and stall every other worker's events.  Closing and joining the
    feeder first makes the injected death clean from the queue's point
    of view while staying a real SIGKILL for the pool and supervisor.
    """
    queue = _WORKER_EVENT_QUEUE
    if queue is None:
        return
    try:
        queue.close()
        queue.join_thread()
    except Exception:  # noqa: BLE001 - about to die anyway
        pass


def _emit_event(sink: Optional[ProgressHook], spec: ScenarioSpec,
                outcome: ScenarioOutcome, seconds: float,
                spans: Tuple[SpanRecord, ...] = ()) -> None:
    if sink is None:
        return
    # Function-level import: repro.store's caching layer imports this
    # module, so the fingerprint helper cannot be imported at the top.
    from repro.store.fingerprint import fingerprint_spec

    try:
        sink(ScenarioEvent(
            label=spec.label(),
            verdict=outcome.verdict,
            seconds=seconds,
            worker_pid=os.getpid(),
            fingerprint=fingerprint_spec(spec),
            usage=ResourceUsage.of_outcome(outcome, seconds=seconds),
            spans=spans,
        ))
    except Exception:  # noqa: BLE001 - progress must never break a campaign
        pass


def _run_batch(
    specs: Sequence[ScenarioSpec],
    event_sink: Optional[ProgressHook] = None,
    telemetry: Optional[WorkerTelemetry] = None,
    attempt: int = 1,
    faults: Optional[FaultPlan] = None,
) -> Tuple[List[ScenarioOutcome], List[float]]:
    """Worker entry point: run a chunk of specs, timing each scenario.

    ``event_sink`` and ``telemetry`` are passed explicitly by the
    in-process backends; pool workers leave them ``None`` and fall back
    to the queue sink / telemetry slice installed by
    :func:`_init_worker`.  ``attempt`` is the supervisor's retry count
    for this submission and ``faults`` the injected chaos plan (pool
    workers inherit it from the initializer): planned faults fire
    *before* a scenario executes, so a crashed or raising task never
    produced a partial outcome for the scenario that triggered it.

    For each *sampled* scenario a fresh :class:`Tracer` is activated
    around the execution — the scenario root span nests the executor's
    ``execute`` span and any ``decision`` spans the scenario kind opens —
    and the drained records ride back on the scenario's event.
    Unsampled scenarios run with no ambient tracer at all, the same
    zero-overhead path as telemetry-off campaigns.

    ``specs`` may arrive as a compact :class:`repro.campaign.wire.WireChunk`
    (the pool path ships descriptors, not spec tuples);
    :func:`~repro.campaign.wire.ensure_specs` expands it — memoised, so a
    retried descriptor costs nothing — and passes real sequences through.
    """
    specs = ensure_specs(specs)
    sink = event_sink if event_sink is not None else _WORKER_EVENT_SINK
    telem = telemetry if telemetry is not None else _WORKER_TELEMETRY
    plan = faults if faults is not None else _WORKER_FAULTS
    outcomes: List[ScenarioOutcome] = []
    timings: List[float] = []
    for spec in specs:
        if plan is not None:
            plan.perform(spec, attempt, in_worker=_IN_POOL_WORKER,
                         before_crash=_flush_worker_queue)
        spans: Tuple[SpanRecord, ...] = ()
        started = time.perf_counter()
        if telem is not None and telem.samples(spec):
            tracer = Tracer(
                trace_id=telem.campaign, capture_phases=telem.capture_phases)
            with activated(tracer):
                with tracer.span(
                    "scenario", label=spec.label(), kind=spec.kind,
                    n=spec.n, f=spec.f, k=spec.k, seed=spec.seed,
                ):
                    outcome = run_scenario(spec)
            spans = tracer.drain()
        else:
            outcome = run_scenario(spec)
        seconds = time.perf_counter() - started
        outcomes.append(outcome)
        timings.append(seconds)
        _emit_event(sink, spec, outcome, seconds, spans)
    return outcomes, timings


def _run_wave(
    specs: Sequence[ScenarioSpec],
    event_sink: Optional[ProgressHook] = None,
    telemetry: Optional[WorkerTelemetry] = None,
    attempt: int = 1,
    faults: Optional[FaultPlan] = None,
) -> Tuple[List[ScenarioOutcome], List[float]]:
    """Worker entry point for one batched wave (the sibling of
    :func:`_run_batch`).

    The whole wave runs in one call to
    :func:`repro.simulation.batch_kernel.execute_wave`, so per-scenario
    wall-clock cannot be observed individually: every scenario is billed
    the wave mean.  When telemetry samples at least one wave member, the
    kernel's ``kernel:wave`` span (wave key, size, fallback count) is
    recorded and rides back on the first sampled scenario's event.
    """
    # Function-level import: the kernel's scalar fallback imports
    # run_scenario from this module, so the top level would be circular.
    from repro.simulation.batch_kernel import execute_wave

    specs = ensure_specs(specs)
    sink = event_sink if event_sink is not None else _WORKER_EVENT_SINK
    telem = telemetry if telemetry is not None else _WORKER_TELEMETRY
    plan = faults if faults is not None else _WORKER_FAULTS
    if plan is not None:
        # Wave-granular chaos: any planned fault fails (or kills) the
        # whole wave task before the kernel runs, and the supervisor's
        # bisection narrows it down exactly as for scalar chunks.
        for spec in specs:
            plan.perform(spec, attempt, in_worker=_IN_POOL_WORKER,
                         before_crash=_flush_worker_queue)
    sampled = [telem is not None and telem.samples(spec) for spec in specs]
    tracer: Optional[Tracer] = None
    if any(sampled):
        tracer = Tracer(
            trace_id=telem.campaign, capture_phases=telem.capture_phases)
    started = time.perf_counter()
    outcomes = execute_wave(specs, tracer=tracer)
    seconds = (time.perf_counter() - started) / len(specs) if specs else 0.0
    spans = tracer.drain() if tracer is not None else ()
    first_sampled = sampled.index(True) if tracer is not None else -1
    timings = [seconds] * len(specs)
    for position, (spec, outcome) in enumerate(zip(specs, outcomes)):
        _emit_event(sink, spec, outcome, seconds,
                    spans if position == first_sampled else ())
    return list(outcomes), timings


def _chunk(specs: Sequence[ScenarioSpec], size: int) -> List[Tuple[ScenarioSpec, ...]]:
    return [tuple(specs[i:i + size]) for i in range(0, len(specs), size)]


@dataclass(frozen=True)
class CampaignResult:
    """Aggregated outcomes of one campaign.

    Equality compares only the outcomes — backend, worker count and all
    timing metadata are excluded, which is what lets regression tests
    assert ``serial_result == parallel_result`` directly.
    """

    outcomes: Tuple[ScenarioOutcome, ...]
    backend: str = field(default="serial", compare=False)
    workers: int = field(default=1, compare=False)
    elapsed_seconds: float = field(default=0.0, compare=False)
    scenario_seconds: Tuple[float, ...] = field(default=(), compare=False)
    #: What the supervisor survived (worker deaths, retries, quarantines).
    #: Infrastructure history, not a result property — excluded from
    #: equality so a chaos run can compare equal to a fault-free one.
    fault_stats: FaultStats = field(default_factory=FaultStats, compare=False)
    #: What shipping the work cost (tasks, wire bytes, queue wait).  Pool
    #: dispatch accounting only — zero for the in-process backends — and
    #: excluded from equality for the same reason as ``fault_stats``.
    dispatch_stats: DispatchStats = field(
        default_factory=DispatchStats, compare=False)

    # -- rollups -----------------------------------------------------------

    @property
    def all_ok(self) -> bool:
        """``True`` when every scenario satisfied every property."""
        return all(outcome.all_ok for outcome in self.outcomes)

    def verdict_counts(self) -> Dict[str, int]:
        """How many scenarios ended ``ok`` / ``violation`` / ``error``."""
        counts = {"ok": 0, "violation": 0, "error": 0}
        for outcome in self.outcomes:
            counts[outcome.verdict] = counts.get(outcome.verdict, 0) + 1
        return counts

    def property_rollup(self) -> Dict[str, int]:
        """Per-property failure counts across all scenarios."""
        return {
            "agreement_failures": sum(1 for o in self.outcomes if not o.agreement_ok),
            "validity_failures": sum(1 for o in self.outcomes if not o.validity_ok),
            "termination_failures": sum(1 for o in self.outcomes if not o.termination_ok),
            "truncated_runs": sum(1 for o in self.outcomes if o.truncated),
        }

    def failures(self) -> Tuple[ScenarioOutcome, ...]:
        """Every outcome that is not ``ok``, in campaign order."""
        return tuple(outcome for outcome in self.outcomes if not outcome.all_ok)

    def by_point(self) -> Dict[Tuple[int, int, int], Tuple[ScenarioOutcome, ...]]:
        """Group outcomes by their ``(n, f, k)`` parameter point."""
        grouped: Dict[Tuple[int, int, int], List[ScenarioOutcome]] = {}
        for outcome in self.outcomes:
            key = (outcome.spec.n, outcome.spec.f, outcome.spec.k)
            grouped.setdefault(key, []).append(outcome)
        return {key: tuple(value) for key, value in grouped.items()}

    def wall_time_stats(self) -> Dict[str, float]:
        """Total and per-scenario wall-time statistics (seconds)."""
        data = sorted(self.scenario_seconds)
        count = len(data)
        if not count:
            return {"total": self.elapsed_seconds, "count": 0.0, "mean": 0.0,
                    "min": 0.0, "max": 0.0, "median": 0.0}
        middle = count // 2
        median = data[middle] if count % 2 else (data[middle - 1] + data[middle]) / 2.0
        return {
            "total": self.elapsed_seconds,
            "count": float(count),
            "mean": sum(data) / count,
            "min": data[0],
            "max": data[-1],
            "median": median,
        }

    @property
    def scenarios_per_second(self) -> float:
        """Campaign throughput (0 when nothing was timed)."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return len(self.outcomes) / self.elapsed_seconds

    def summary(self) -> Dict[str, object]:
        """Headline numbers for benchmark ``extra_info`` and reports."""
        return {
            "scenarios": len(self.outcomes),
            "backend": self.backend,
            "workers": self.workers,
            "elapsed_seconds": round(self.elapsed_seconds, 6),
            "scenarios_per_second": round(self.scenarios_per_second, 3),
            **self.verdict_counts(),
            **self.property_rollup(),
        }

    # -- serialisation -----------------------------------------------------

    def to_json(self, *, indent: Optional[int] = None) -> str:
        """Serialise the full result — outcomes and metadata — to JSON.

        The round trip is lossless: ``CampaignResult.from_json(r.to_json())``
        compares equal to ``r`` (and also restores the non-compared
        backend/timing metadata), which is what lets campaign results be
        archived, diffed and re-aggregated without re-running anything.
        """
        payload = {
            "format": RESULT_JSON_FORMAT,
            "backend": self.backend,
            "workers": self.workers,
            "elapsed_seconds": self.elapsed_seconds,
            "scenario_seconds": list(self.scenario_seconds),
            "fault_stats": self.fault_stats.as_dict(),
            "dispatch_stats": self.dispatch_stats.as_dict(),
            "outcomes": [codec.outcome_to_dict(o) for o in self.outcomes],
        }
        return json.dumps(payload, sort_keys=True, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "CampaignResult":
        """Inverse of :meth:`to_json`."""
        payload = json.loads(text)
        if payload.get("format") != RESULT_JSON_FORMAT:
            raise ConfigurationError(
                f"unsupported campaign-result format {payload.get('format')!r}; "
                f"this build reads format {RESULT_JSON_FORMAT}"
            )
        return cls(
            outcomes=tuple(codec.outcome_from_dict(o) for o in payload["outcomes"]),
            backend=payload["backend"],
            workers=int(payload["workers"]),
            elapsed_seconds=float(payload["elapsed_seconds"]),
            scenario_seconds=tuple(float(s) for s in payload["scenario_seconds"]),
            # Absent in payloads written before the faults subsystem.
            fault_stats=FaultStats.from_dict(payload.get("fault_stats") or {}),
            # Absent in payloads written before compact dispatch.
            dispatch_stats=DispatchStats.from_dict(
                payload.get("dispatch_stats") or {}),
        )


@dataclass(frozen=True)
class CampaignRunner:
    """Executes campaigns over one of the :data:`BACKENDS`.

    Attributes
    ----------
    backend:
        ``"serial"`` (default), ``"chunked"`` or ``"process"``.
    workers:
        Worker-process count for the process backend (default: the CPU
        count, capped at 8).  Ignored by the in-process backends.
    chunk_size:
        Scenarios per chunk for the chunked/process backends (default:
        an even split into roughly ``4 * workers`` chunks).
    batch:
        When ``True``, specs the batched kernel can execute
        (:func:`repro.simulation.batch_kernel.is_batchable`) are grouped
        into same-``(kind, n, f)`` waves and run through
        :func:`_run_wave`; everything else — FULL/DECISIONS_ONLY
        recording, kinds without a batched step function, unknown
        schedulers — takes the scalar path unchanged.  Outcomes are
        reassembled in spec order, so a batched campaign compares equal
        to the same campaign without batching on every backend.
        ``should_skip`` is consulted once per scenario *before* waves
        form (this is where :class:`repro.store.CachingRunner` skims
        cached fingerprints off), not re-evaluated at submission time.
    faults:
        An optional :class:`~repro.faults.plan.FaultPlan` injecting
        deterministic chaos (worker crashes, hangs, task exceptions,
        delays) at planned points.  Worker-level faults (crash/hang)
        only fire under the process backend; the others fire everywhere,
        so a quarantine-free plan yields the *same* ``CampaignResult``
        on every backend — the fault-tolerance equality invariant.
    retry:
        The :class:`~repro.faults.plan.RetryPolicy` governing the
        supervised dispatch loop (attempts, backoff, per-task deadlines,
        worker-death grace).  Defaults to ``RetryPolicy()``.  The
        process backend is *always* supervised — real worker deaths are
        survived whether or not chaos is injected; the in-process
        backends route through the supervisor only when ``faults`` is
        set, keeping the fault-free fast path untouched.
    cost_model:
        An optional frozen :class:`~repro.campaign.costmodel.CostModel`.
        When set, the chunked/process/batched backends size their chunks
        and waves by *expected cost* toward ``target_task_seconds`` (via
        :func:`~repro.campaign.costmodel.plan_chunks`) and submit the
        longest-expected tasks first, instead of the even count split.
        Pure scheduling: outcomes are reassembled by spec position, so
        the :class:`CampaignResult` is identical with any model or none.
        An explicit ``chunk_size`` wins over the model.
    target_task_seconds:
        The per-task latency the cost-model planner sizes chunks toward
        (default ``0.25``).  Ignored without a ``cost_model``.
    """

    backend: str = "serial"
    workers: Optional[int] = None
    chunk_size: Optional[int] = None
    batch: bool = False
    faults: Optional[FaultPlan] = None
    retry: Optional[RetryPolicy] = None
    cost_model: Optional[CostModel] = None
    target_task_seconds: float = 0.25

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ConfigurationError(
                f"unknown campaign backend {self.backend!r}; choose one of {BACKENDS}"
            )
        if self.workers is not None and self.workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {self.workers}")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ConfigurationError(f"chunk_size must be >= 1, got {self.chunk_size}")
        if self.target_task_seconds <= 0:
            raise ConfigurationError(
                f"target_task_seconds must be > 0, got {self.target_task_seconds}")

    # -- public API --------------------------------------------------------

    def run(
        self,
        scenarios: Union[ScenarioGrid, Iterable[ScenarioSpec]],
        *,
        on_outcome: Optional[OutcomeHook] = None,
        progress: Optional[ProgressHook] = None,
        should_skip: Optional[SkipHook] = None,
        telemetry: Optional[WorkerTelemetry] = None,
    ) -> CampaignResult:
        """Compile (if needed) and execute a campaign.

        ``on_outcome(outcome, seconds)`` fires in the calling process as
        each outcome becomes available; ``progress`` receives one
        :class:`ScenarioEvent` per finished scenario (worker-side under
        the process backend); ``should_skip(spec)`` is consulted once per
        scenario at dispatch time and drops the scenario when ``True``.
        Without hooks the behaviour is exactly the hook-free campaign.

        ``telemetry`` (a :class:`~repro.telemetry.session.WorkerTelemetry`)
        turns on span tracing for sampled scenarios.  Spans ride back on
        :class:`ScenarioEvent`\\ s, so tracing requires a ``progress``
        sink — with ``progress=None`` the spans would have nowhere to go
        and ``telemetry`` is ignored.
        """
        if isinstance(scenarios, ScenarioGrid):
            specs: Tuple[ScenarioSpec, ...] = scenarios.compile()
        else:
            specs = tuple(scenarios)
        for spec in specs:
            get_kind(spec.kind)  # fail fast on unknown kinds, before executing
        if progress is None:
            telemetry = None
        if telemetry is not None and specs:
            # A stride filter over few specs can sample nothing at all;
            # force at least one traced scenario so the campaign's trace
            # (and the report CLI reading it) is never silently empty.
            telemetry = telemetry.ensure_samples(specs)

        stats = FaultStats()
        dispatch = DispatchStats()
        started = time.perf_counter()
        if self.batch:
            outcomes, timings, workers = self._run_batched(
                specs, on_outcome, progress, should_skip, telemetry, stats,
                dispatch)
        elif self.backend == "serial":
            if self.faults is None:
                outcomes, timings = self._run_inprocess(
                    [specs], on_outcome, progress, should_skip, telemetry,
                    per_scenario=True)
            else:
                outcomes, timings = self._run_supervised_inline(
                    self._spec_tasks(specs, should_skip),
                    on_outcome, progress, telemetry, stats)
            workers = 1
        elif self.backend == "chunked":
            plan = self._plan(specs)
            if plan is not None:
                # Planned chunks complete longest-first, so outcomes must
                # be reassembled by position — the supervised inline path
                # already does exactly that.
                outcomes, timings = self._run_supervised_inline(
                    self._planned_tasks(specs, plan, should_skip),
                    on_outcome, progress, telemetry, stats)
            elif self.faults is None:
                chunks = _chunk(specs, self._effective_chunk_size(len(specs), 1))
                outcomes, timings = self._run_inprocess(
                    chunks, on_outcome, progress, should_skip, telemetry,
                    per_scenario=False)
            else:
                outcomes, timings = self._run_supervised_inline(
                    self._chunk_tasks(
                        specs, self._effective_chunk_size(len(specs), 1),
                        should_skip),
                    on_outcome, progress, telemetry, stats)
            workers = 1
        else:
            outcomes, timings, workers = self._run_process(
                specs, on_outcome, progress, should_skip, telemetry, stats,
                dispatch)
        elapsed = time.perf_counter() - started

        return CampaignResult(
            outcomes=tuple(outcomes),
            backend=self.backend,
            workers=workers,
            elapsed_seconds=elapsed,
            scenario_seconds=tuple(timings),
            fault_stats=stats,
            dispatch_stats=dispatch,
        )

    # -- internals ---------------------------------------------------------

    def _effective_workers(self) -> int:
        if self.workers is not None:
            return self.workers
        return max(1, min(os.cpu_count() or 1, 8))

    def _effective_chunk_size(self, total: int, workers: int) -> int:
        if self.chunk_size is not None:
            return self.chunk_size
        if total == 0:
            return 1
        return max(1, -(-total // max(1, workers * 4)))

    @staticmethod
    def _filter_chunk(
        chunk: Sequence[ScenarioSpec], should_skip: Optional[SkipHook]
    ) -> Tuple[ScenarioSpec, ...]:
        if should_skip is None:
            return tuple(chunk)
        return tuple(spec for spec in chunk if not should_skip(spec))

    def _retry_policy(self) -> RetryPolicy:
        return self.retry if self.retry is not None else RetryPolicy()

    @staticmethod
    def _spec_tasks(specs: Sequence[ScenarioSpec],
                    should_skip: Optional[SkipHook]):
        """Lazy per-scenario tasks (serial-backend granularity)."""
        for position, spec in enumerate(specs):
            if should_skip is not None and should_skip(spec):
                continue
            yield (_run_batch, (spec,), (position,))

    @staticmethod
    def _chunk_tasks(specs: Sequence[ScenarioSpec], size: int,
                     should_skip: Optional[SkipHook]):
        """Lazy chunk tasks; ``should_skip`` is consulted at submission
        time, after earlier completions were delivered — the semantics
        adaptive budgets rely on."""
        for start in range(0, len(specs), size):
            live_specs: List[ScenarioSpec] = []
            live_positions: List[int] = []
            for offset, spec in enumerate(specs[start:start + size]):
                if should_skip is not None and should_skip(spec):
                    continue
                live_specs.append(spec)
                live_positions.append(start + offset)
            if live_specs:
                yield (_run_batch, tuple(live_specs), tuple(live_positions))

    def _plan(self, specs: Sequence[ScenarioSpec]) -> Optional[List[Tuple[int, ...]]]:
        """Cost-planned position groups, or ``None`` for the even split.

        ``None`` (no model, an explicit ``chunk_size`` override, or an
        empty campaign) keeps the historical chunking byte-for-byte.
        """
        if self.cost_model is None or self.chunk_size is not None or not specs:
            return None
        return plan_chunks(specs, self.cost_model,
                           target_seconds=self.target_task_seconds)

    @staticmethod
    def _planned_tasks(specs: Sequence[ScenarioSpec],
                       plan: Sequence[Tuple[int, ...]],
                       should_skip: Optional[SkipHook]):
        """Lazy tasks over cost-planned position groups (longest first).

        Same submission-time ``should_skip`` semantics as
        :meth:`_chunk_tasks`; outcomes land by position, so the planned
        order cannot influence the campaign result.
        """
        for group in plan:
            live_specs: List[ScenarioSpec] = []
            live_positions: List[int] = []
            for position in group:
                spec = specs[position]
                if should_skip is not None and should_skip(spec):
                    continue
                live_specs.append(spec)
                live_positions.append(position)
            if live_specs:
                yield (_run_batch, tuple(live_specs), tuple(live_positions))

    def _collect_recorder(self, results: Dict[int, Tuple[ScenarioOutcome, float]],
                          on_outcome: Optional[OutcomeHook]):
        """A supervisor ``record`` hook writing slots + delivering hooks."""
        def record(indices: Sequence[int],
                   outcomes: Sequence[ScenarioOutcome],
                   timings: Sequence[float]) -> None:
            for index, outcome, seconds in zip(indices, outcomes, timings):
                results[index] = (outcome, seconds)
            self._deliver(outcomes, timings, on_outcome)
        return record

    def _make_supervisor(self, record, progress: Optional[ProgressHook],
                         telemetry: Optional[WorkerTelemetry],
                         stats: FaultStats,
                         max_outstanding: int = 1,
                         dispatch: Optional[DispatchStats] = None,
                         pack=None) -> Supervisor:
        return Supervisor(
            retry=self._retry_policy(), faults=self.faults, stats=stats,
            record=record, progress=progress, telemetry=telemetry,
            max_outstanding=max_outstanding, pack=pack, dispatch=dispatch)

    def _run_supervised_inline(
        self,
        tasks,
        on_outcome: Optional[OutcomeHook],
        progress: Optional[ProgressHook],
        telemetry: Optional[WorkerTelemetry],
        stats: FaultStats,
    ) -> Tuple[List[ScenarioOutcome], List[float]]:
        """In-process supervised execution (faulty serial/chunked runs)."""
        results: Dict[int, Tuple[ScenarioOutcome, float]] = {}
        supervisor = self._make_supervisor(
            self._collect_recorder(results, on_outcome), progress, telemetry,
            stats)
        supervisor.run_inline(tasks)
        ordered = sorted(results)
        return ([results[i][0] for i in ordered],
                [results[i][1] for i in ordered])

    def _run_inprocess(
        self,
        chunks: Sequence[Sequence[ScenarioSpec]],
        on_outcome: Optional[OutcomeHook],
        progress: Optional[ProgressHook],
        should_skip: Optional[SkipHook],
        telemetry: Optional[WorkerTelemetry] = None,
        *,
        per_scenario: bool,
    ) -> Tuple[List[ScenarioOutcome], List[float]]:
        """Serial/chunked execution with hooks.

        ``per_scenario=True`` (serial backend) delivers ``on_outcome``
        after every scenario and consults ``should_skip`` before each
        one; the chunked backend mirrors the process backend instead —
        skip decisions and ``on_outcome`` happen at chunk granularity.
        """
        outcomes: List[ScenarioOutcome] = []
        timings: List[float] = []
        for chunk in chunks:
            if per_scenario:
                for spec in chunk:
                    if should_skip is not None and should_skip(spec):
                        continue
                    batch_outcomes, batch_timings = _run_batch(
                        (spec,), progress, telemetry)
                    self._deliver(batch_outcomes, batch_timings, on_outcome)
                    outcomes.extend(batch_outcomes)
                    timings.extend(batch_timings)
            else:
                live = self._filter_chunk(chunk, should_skip)
                if not live:
                    continue
                batch_outcomes, batch_timings = _run_batch(
                    live, progress, telemetry)
                self._deliver(batch_outcomes, batch_timings, on_outcome)
                outcomes.extend(batch_outcomes)
                timings.extend(batch_timings)
        return outcomes, timings

    @staticmethod
    def _deliver(
        outcomes: Sequence[ScenarioOutcome],
        timings: Sequence[float],
        on_outcome: Optional[OutcomeHook],
    ) -> None:
        if on_outcome is None:
            return
        for outcome, seconds in zip(outcomes, timings):
            on_outcome(outcome, seconds)

    def _run_batched(
        self,
        specs: Sequence[ScenarioSpec],
        on_outcome: Optional[OutcomeHook],
        progress: Optional[ProgressHook],
        should_skip: Optional[SkipHook],
        telemetry: Optional[WorkerTelemetry],
        stats: FaultStats,
        dispatch: DispatchStats,
    ) -> Tuple[List[ScenarioOutcome], List[float], int]:
        """Partition specs into kernel waves plus a scalar remainder.

        Skips are applied first, so cached fingerprints never inflate a
        wave.  Waves keep their first-occurrence order; the scalar
        leftovers follow in spec order.  For the parallel backends both
        waves and scalar leftovers are split at the usual chunk size —
        or, with a :attr:`cost_model`, at cost-sized boundaries with the
        longest-expected tasks submitted first — so a single large wave
        cannot serialise the pool.  Results are reassembled by original
        spec position either way.
        """
        # Function-level import: the kernel's scalar fallback imports
        # run_scenario from this module.
        from repro.simulation.batch_kernel import partition_waves

        live = [
            (index, spec) for index, spec in enumerate(specs)
            if should_skip is None or not should_skip(spec)
        ]
        live_specs = [spec for _, spec in live]
        waves, scalar = partition_waves(live_specs)

        workers = self._effective_workers() if self.backend == "process" else 1
        # Serial batched runs always take whole waves (max amortisation);
        # the cost model only re-sizes where parallelism can use it.
        model = (self.cost_model
                 if self.backend != "serial" and self.chunk_size is None
                 else None)
        if self.backend == "serial":
            piece_size = len(live_specs) or 1  # whole waves: max amortisation
        else:
            piece_size = self._effective_chunk_size(len(live_specs), workers)

        def pieces(positions: Sequence[int]) -> List[Sequence[int]]:
            if model is None:
                return [positions[start:start + piece_size]
                        for start in range(0, len(positions), piece_size)]
            groups = plan_chunks(
                [live_specs[p] for p in positions], model,
                target_seconds=self.target_task_seconds)
            return [[positions[i] for i in group] for group in groups]

        tasks: List[Tuple[Callable, Tuple[ScenarioSpec, ...], Tuple[int, ...]]] = []
        for positions in waves:
            for piece in pieces(positions):
                tasks.append((
                    _run_wave,
                    tuple(live_specs[p] for p in piece),
                    tuple(live[p][0] for p in piece),
                ))
        for piece in pieces(scalar):
            tasks.append((
                _run_batch,
                tuple(live_specs[p] for p in piece),
                tuple(live[p][0] for p in piece),
            ))
        if model is not None:
            # Longest-expected first across waves *and* scalar leftovers;
            # ties broken by first slot, so the order is deterministic.
            tasks.sort(key=lambda task: (
                -model.estimate_total(task[1]), task[2][0]))

        results: Dict[int, Tuple[ScenarioOutcome, float]] = {}

        def record(indices: Sequence[int],
                   outcomes: Sequence[ScenarioOutcome],
                   timings: Sequence[float]) -> None:
            for index, outcome, seconds in zip(indices, outcomes, timings):
                results[index] = (outcome, seconds)
            self._deliver(outcomes, timings, on_outcome)

        if self.backend == "process" and tasks and workers > 1:
            workers = self._run_on_pool(
                iter(tasks), min(workers, len(tasks)),
                progress, telemetry, record, stats, dispatch)
        elif self.faults is None:
            for fn, task_specs, indices in tasks:
                task_outcomes, task_timings = fn(task_specs, progress, telemetry)
                record(indices, task_outcomes, task_timings)
            workers = 1
        else:
            self._make_supervisor(
                record, progress, telemetry, stats).run_inline(tasks)
            workers = 1
        ordered = sorted(results)
        return ([results[i][0] for i in ordered],
                [results[i][1] for i in ordered], workers)

    def _run_process(
        self,
        specs: Sequence[ScenarioSpec],
        on_outcome: Optional[OutcomeHook],
        progress: Optional[ProgressHook],
        should_skip: Optional[SkipHook],
        telemetry: Optional[WorkerTelemetry],
        stats: FaultStats,
        dispatch: DispatchStats,
    ) -> Tuple[List[ScenarioOutcome], List[float], int]:
        workers = self._effective_workers()
        if not specs or workers == 1:
            if self.faults is None:
                outcomes, timings = self._run_inprocess(
                    [specs], on_outcome, progress, should_skip, telemetry,
                    per_scenario=True)
            else:
                outcomes, timings = self._run_supervised_inline(
                    self._spec_tasks(specs, should_skip),
                    on_outcome, progress, telemetry, stats)
            return outcomes, timings, 1
        plan = self._plan(specs)
        if plan is not None:
            tasks = self._planned_tasks(specs, plan, should_skip)
            task_count = len(plan)
        else:
            chunk_size = self._effective_chunk_size(len(specs), workers)
            tasks = self._chunk_tasks(specs, chunk_size, should_skip)
            task_count = -(-len(specs) // chunk_size)
        results: Dict[int, Tuple[ScenarioOutcome, float]] = {}
        workers = self._run_on_pool(
            tasks, min(workers, task_count), progress, telemetry,
            self._collect_recorder(results, on_outcome), stats, dispatch)
        ordered = sorted(results)
        return ([results[i][0] for i in ordered],
                [results[i][1] for i in ordered], workers)

    def _run_on_pool(
        self,
        tasks,
        pool_processes: int,
        progress: Optional[ProgressHook],
        telemetry: Optional[WorkerTelemetry],
        record,
        stats: FaultStats,
        dispatch: Optional[DispatchStats] = None,
    ) -> int:
        """Shared pool plumbing for both process backends.

        ``tasks`` (an iterable of ``(fn, specs, slot indices)``) is
        consumed lazily by the supervisor at submission time.  The
        supervisor owns the dispatch loop — bounded waits, per-task
        deadlines, retry/bisection/quarantine, worker-death re-queueing,
        in-process degradation when the pool breaks — while this method
        owns the pool's lifecycle: fork context, worker initializer
        (event queue + telemetry slice + fault plan), the drain thread,
        and uniform, deadlock-free teardown.  Tasks cross the pipe as
        compact wire descriptors (``pack=encode_chunk``); the worker
        entry points expand them via :func:`ensure_specs`.
        """
        workers = self._effective_workers()
        if "fork" in multiprocessing.get_all_start_methods():
            context = multiprocessing.get_context("fork")
        else:  # pragma: no cover - non-POSIX platforms
            context = multiprocessing.get_context()

        supervisor = self._make_supervisor(
            record, progress, telemetry, stats,
            max_outstanding=max(2, workers * 2),
            dispatch=dispatch, pack=encode_chunk)
        event_queue = context.Queue() if progress is not None else None
        drain: Optional[threading.Thread] = None
        try:
            pool = context.Pool(
                processes=max(1, pool_processes),
                initializer=_init_worker,
                initargs=(event_queue, telemetry, self.faults),
            )
        except (OSError, PermissionError):  # pragma: no cover - locked-down hosts
            # Environments that forbid forking still get a correct (if
            # serial) campaign rather than a crash.
            if event_queue is not None:
                event_queue.close()
                event_queue.join_thread()
            supervisor.run_inline(tasks)
            return 1

        if event_queue is not None:
            drain = threading.Thread(
                target=_drain_events, args=(event_queue, progress), daemon=True)
            drain.start()

        try:
            supervisor.run_pool(pool, tasks)
        finally:
            self._teardown_pool(pool, event_queue, drain)
        return workers

    def _teardown_pool(self, pool, event_queue,
                       drain: Optional[threading.Thread]) -> None:
        """Uniform pool/queue teardown, safe on every exit path.

        Order matters: the sentinel goes onto the event queue *before*
        ``terminate()`` (killing a worker mid-write used to be able to
        wedge or truncate the drain), the drain gets a bounded join with
        a logged warning instead of silent event loss, and the queue is
        always ``close()``d *and* ``join_thread()``ed — unless the drain
        timed out, where ``cancel_join_thread()`` avoids blocking on a
        pipe nobody will ever read.

        Even ``terminate()`` gets a bounded wait: a worker SIGKILLed
        while blocked in the shared task queue's ``get()`` dies *holding*
        the queue's reader lock, and ``Pool._terminate_pool`` then
        deadlocks trying to acquire it.  The terminate runs on a daemon
        thread; if it wedges, the remaining workers are SIGKILLed
        directly and the wedged thread is abandoned (every handler
        thread it could be waiting on is a daemon too).
        """
        grace = self._retry_policy().teardown_grace_seconds
        pool.close()
        joiner = threading.Thread(target=pool.join, daemon=True)
        joiner.start()
        joiner.join(timeout=grace)
        if joiner.is_alive():
            _log.warning(
                "pool workers still running %.1fs after close (hung or "
                "saturated); terminating them", grace)
        drained = True
        if event_queue is not None:
            try:
                event_queue.put(None)
            except Exception:  # noqa: BLE001 - queue already broken
                drained = False
            if drain is not None:
                # The pool is closed and joined (or being given up on),
                # so a healthy drain only has buffered events left and
                # finishes almost instantly; a worker killed holding the
                # queue's write lock silences it forever, so don't wait
                # long — lost "ran" events are reconciled by the caller.
                drain_grace = max(2 * grace, 2.0)
                drain.join(timeout=drain_grace)
                if drain.is_alive():
                    drained = False
                    _log.warning(
                        "event drain did not finish within %.1fs; some "
                        "progress events were lost", drain_grace)
        terminator = threading.Thread(target=pool.terminate, daemon=True)
        terminator.start()
        terminator.join(timeout=max(grace, 1.0))
        if terminator.is_alive():  # pragma: no cover - needs a wedged queue lock
            _log.error(
                "pool terminate wedged — a killed worker can die holding "
                "the shared task-queue lock; force-killing remaining "
                "workers")
            for proc in list(getattr(pool, "_pool", None) or []):
                try:
                    os.kill(proc.pid, signal.SIGKILL)
                except (ProcessLookupError, PermissionError, TypeError):
                    pass
            terminator.join(timeout=max(grace, 1.0))
        if event_queue is not None:
            event_queue.close()
            if drained:
                event_queue.join_thread()
            else:  # pragma: no cover - only on drain timeout
                event_queue.cancel_join_thread()


def _drain_events(event_queue, progress: ProgressHook) -> None:
    """Parent-side drain loop: forward worker events to the reporter."""
    while True:
        try:
            event = event_queue.get()
        except (EOFError, OSError):  # pragma: no cover - queue torn down
            return
        except Exception:  # noqa: BLE001 - a dying worker can tear an event
            continue
        if event is None:
            return
        try:
            progress(event)
        except Exception:  # noqa: BLE001 - progress must never break a campaign
            pass
