"""Campaign execution: serial, chunked and multiprocessing backends.

:class:`CampaignRunner` executes a flat list of scenario specs (or a
:class:`~repro.campaign.grid.ScenarioGrid`, which it compiles first) and
aggregates the outcomes into a :class:`CampaignResult`.  Three backends
share one code path:

* ``"serial"`` — one scenario after the other in the calling process;
  the reference backend every other backend must agree with.
* ``"chunked"`` — the same executions, batched through the exact chunk
  machinery the process backend uses; useful for testing the chunking
  logic and for coarse progress accounting without any forking.
* ``"process"`` — a ``multiprocessing`` pool of worker processes, each
  executing whole chunks of specs.  Because specs are plain data and
  every seeded scheduler derives its RNG stream from the scenario's
  identity (:meth:`ScenarioSpec.derived_seed`), the outcome of a
  scenario does not depend on which worker runs it or in which order —
  so all backends produce **identical** :class:`CampaignResult`\\ s
  (timing metadata aside, which is excluded from equality).

The executor is CPU-bound pure Python, so the process backend is the one
that scales with cores; there is deliberately no thread backend (the GIL
would serialise it anyway).
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.campaign.grid import ScenarioGrid
from repro.campaign.scenarios import get_kind
from repro.campaign.spec import ScenarioOutcome, ScenarioSpec
from repro.exceptions import ConfigurationError

__all__ = ["CampaignRunner", "CampaignResult", "run_scenario"]

BACKENDS = ("serial", "chunked", "process")


def run_scenario(spec: ScenarioSpec) -> ScenarioOutcome:
    """Execute one scenario, capturing failures as ``"error"`` outcomes.

    A raising scenario never aborts a campaign: the exception is folded
    into the outcome so that the other scenarios still run and the
    aggregation shows exactly which points broke.
    """
    kind = get_kind(spec.kind)
    try:
        return kind(spec)
    except Exception as exc:  # noqa: BLE001 - campaign robustness by design
        return ScenarioOutcome.from_error(spec, exc)


def _run_batch(specs: Sequence[ScenarioSpec]) -> Tuple[List[ScenarioOutcome], List[float]]:
    """Worker entry point: run a chunk of specs, timing each scenario."""
    outcomes: List[ScenarioOutcome] = []
    timings: List[float] = []
    for spec in specs:
        started = time.perf_counter()
        outcomes.append(run_scenario(spec))
        timings.append(time.perf_counter() - started)
    return outcomes, timings


def _chunk(specs: Sequence[ScenarioSpec], size: int) -> List[Tuple[ScenarioSpec, ...]]:
    return [tuple(specs[i:i + size]) for i in range(0, len(specs), size)]


@dataclass(frozen=True)
class CampaignResult:
    """Aggregated outcomes of one campaign.

    Equality compares only the outcomes — backend, worker count and all
    timing metadata are excluded, which is what lets regression tests
    assert ``serial_result == parallel_result`` directly.
    """

    outcomes: Tuple[ScenarioOutcome, ...]
    backend: str = field(default="serial", compare=False)
    workers: int = field(default=1, compare=False)
    elapsed_seconds: float = field(default=0.0, compare=False)
    scenario_seconds: Tuple[float, ...] = field(default=(), compare=False)

    # -- rollups -----------------------------------------------------------

    @property
    def all_ok(self) -> bool:
        """``True`` when every scenario satisfied every property."""
        return all(outcome.all_ok for outcome in self.outcomes)

    def verdict_counts(self) -> Dict[str, int]:
        """How many scenarios ended ``ok`` / ``violation`` / ``error``."""
        counts = {"ok": 0, "violation": 0, "error": 0}
        for outcome in self.outcomes:
            counts[outcome.verdict] = counts.get(outcome.verdict, 0) + 1
        return counts

    def property_rollup(self) -> Dict[str, int]:
        """Per-property failure counts across all scenarios."""
        return {
            "agreement_failures": sum(1 for o in self.outcomes if not o.agreement_ok),
            "validity_failures": sum(1 for o in self.outcomes if not o.validity_ok),
            "termination_failures": sum(1 for o in self.outcomes if not o.termination_ok),
            "truncated_runs": sum(1 for o in self.outcomes if o.truncated),
        }

    def failures(self) -> Tuple[ScenarioOutcome, ...]:
        """Every outcome that is not ``ok``, in campaign order."""
        return tuple(outcome for outcome in self.outcomes if not outcome.all_ok)

    def by_point(self) -> Dict[Tuple[int, int, int], Tuple[ScenarioOutcome, ...]]:
        """Group outcomes by their ``(n, f, k)`` parameter point."""
        grouped: Dict[Tuple[int, int, int], List[ScenarioOutcome]] = {}
        for outcome in self.outcomes:
            key = (outcome.spec.n, outcome.spec.f, outcome.spec.k)
            grouped.setdefault(key, []).append(outcome)
        return {key: tuple(value) for key, value in grouped.items()}

    def wall_time_stats(self) -> Dict[str, float]:
        """Total and per-scenario wall-time statistics (seconds)."""
        data = sorted(self.scenario_seconds)
        count = len(data)
        if not count:
            return {"total": self.elapsed_seconds, "count": 0.0, "mean": 0.0,
                    "min": 0.0, "max": 0.0, "median": 0.0}
        middle = count // 2
        median = data[middle] if count % 2 else (data[middle - 1] + data[middle]) / 2.0
        return {
            "total": self.elapsed_seconds,
            "count": float(count),
            "mean": sum(data) / count,
            "min": data[0],
            "max": data[-1],
            "median": median,
        }

    @property
    def scenarios_per_second(self) -> float:
        """Campaign throughput (0 when nothing was timed)."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return len(self.outcomes) / self.elapsed_seconds

    def summary(self) -> Dict[str, object]:
        """Headline numbers for benchmark ``extra_info`` and reports."""
        return {
            "scenarios": len(self.outcomes),
            "backend": self.backend,
            "workers": self.workers,
            "elapsed_seconds": round(self.elapsed_seconds, 6),
            "scenarios_per_second": round(self.scenarios_per_second, 3),
            **self.verdict_counts(),
            **self.property_rollup(),
        }


@dataclass(frozen=True)
class CampaignRunner:
    """Executes campaigns over one of the :data:`BACKENDS`.

    Attributes
    ----------
    backend:
        ``"serial"`` (default), ``"chunked"`` or ``"process"``.
    workers:
        Worker-process count for the process backend (default: the CPU
        count, capped at 8).  Ignored by the in-process backends.
    chunk_size:
        Scenarios per chunk for the chunked/process backends (default:
        an even split into roughly ``4 * workers`` chunks).
    """

    backend: str = "serial"
    workers: Optional[int] = None
    chunk_size: Optional[int] = None

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ConfigurationError(
                f"unknown campaign backend {self.backend!r}; choose one of {BACKENDS}"
            )
        if self.workers is not None and self.workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {self.workers}")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ConfigurationError(f"chunk_size must be >= 1, got {self.chunk_size}")

    # -- public API --------------------------------------------------------

    def run(
        self, scenarios: Union[ScenarioGrid, Iterable[ScenarioSpec]]
    ) -> CampaignResult:
        """Compile (if needed) and execute a campaign."""
        if isinstance(scenarios, ScenarioGrid):
            specs: Tuple[ScenarioSpec, ...] = scenarios.compile()
        else:
            specs = tuple(scenarios)
        for spec in specs:
            get_kind(spec.kind)  # fail fast on unknown kinds, before executing

        started = time.perf_counter()
        if self.backend == "serial":
            outcomes, timings = _run_batch(specs)
            workers = 1
        elif self.backend == "chunked":
            outcomes, timings = [], []
            for chunk in _chunk(specs, self._effective_chunk_size(len(specs), 1)):
                chunk_outcomes, chunk_timings = _run_batch(chunk)
                outcomes.extend(chunk_outcomes)
                timings.extend(chunk_timings)
            workers = 1
        else:
            outcomes, timings, workers = self._run_process(specs)
        elapsed = time.perf_counter() - started

        return CampaignResult(
            outcomes=tuple(outcomes),
            backend=self.backend,
            workers=workers,
            elapsed_seconds=elapsed,
            scenario_seconds=tuple(timings),
        )

    # -- internals ---------------------------------------------------------

    def _effective_workers(self) -> int:
        if self.workers is not None:
            return self.workers
        return max(1, min(os.cpu_count() or 1, 8))

    def _effective_chunk_size(self, total: int, workers: int) -> int:
        if self.chunk_size is not None:
            return self.chunk_size
        if total == 0:
            return 1
        return max(1, -(-total // max(1, workers * 4)))

    def _run_process(
        self, specs: Sequence[ScenarioSpec]
    ) -> Tuple[List[ScenarioOutcome], List[float], int]:
        workers = self._effective_workers()
        if not specs or workers == 1:
            outcomes, timings = _run_batch(specs)
            return outcomes, timings, 1
        chunks = _chunk(specs, self._effective_chunk_size(len(specs), workers))
        if "fork" in multiprocessing.get_all_start_methods():
            context = multiprocessing.get_context("fork")
        else:  # pragma: no cover - non-POSIX platforms
            context = multiprocessing.get_context()
        try:
            with context.Pool(processes=min(workers, len(chunks))) as pool:
                batches = pool.map(_run_batch, chunks)
        except (OSError, PermissionError):  # pragma: no cover - locked-down hosts
            # Environments that forbid forking still get a correct (if
            # serial) campaign rather than a crash.
            outcomes, timings = _run_batch(specs)
            return outcomes, timings, 1
        outcomes = [outcome for batch, _ in batches for outcome in batch]
        timings = [timing for _, batch_timings in batches for timing in batch_timings]
        return outcomes, timings, workers
