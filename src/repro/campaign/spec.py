"""Scenario specifications: the unit of work of a campaign.

A :class:`ScenarioSpec` is a *declarative*, hashable and picklable
description of exactly one adversarial execution: which registered
scenario kind to run, the parameter point ``(n, f, k)``, the scheduler
and its seed, the planned crash schedule and the step budget.  Because a
spec carries everything needed to reproduce the run, campaigns are
deterministic by construction — executing the same spec twice, in the
same process or in different worker processes, yields the same
:class:`ScenarioOutcome`.

Seeding follows the "derive, don't share" rule used by large simulation
harnesses: the RNG seed actually handed to a scheduler is
:meth:`ScenarioSpec.derived_seed`, a stable 64-bit hash of the scenario's
identity.  Two different scenarios of the same grid therefore never share
an RNG stream, and the derived seed does not depend on the order in which
scenarios are executed or on which worker executes them.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Hashable, Iterable, Mapping, Tuple, Union

from repro.exceptions import ConfigurationError
from repro.simulation.recording import RECORDING_POLICY_NAMES
from repro.types import ProcessId, Time

__all__ = [
    "DETERMINISTIC_SCHEDULERS",
    "ScenarioSpec",
    "ScenarioOutcome",
    "normalize_crashes",
    "normalize_params",
]

#: Scheduler names whose behaviour does not depend on a seed; the grid
#: compiler normalises their seed to 0 so that the seed axis does not
#: produce duplicate scenarios.
DETERMINISTIC_SCHEDULERS = frozenset({"round-robin", "partitioning", "isolation"})

#: Crash schedules accepted by :func:`normalize_crashes`: a mapping
#: ``pid -> crash time`` or an iterable of initially dead process ids.
CrashSchedule = Union[Mapping[ProcessId, Time], Iterable[ProcessId]]


def normalize_crashes(schedule: CrashSchedule, n: int) -> Tuple[Tuple[ProcessId, Time], ...]:
    """Canonicalise a crash schedule to sorted ``(pid, time)`` pairs.

    A mapping is read as ``pid -> crash time``; a plain iterable of ids is
    read as "these processes are initially dead" (crash time 0).  Ids
    outside ``1..n``, negative times and duplicate process ids raise
    :class:`repro.exceptions.ConfigurationError`.  Duplicates are always
    an error — even when the duplicated entries agree on the crash time —
    because downstream consumers build ``dict(spec.crashes)``, which would
    otherwise silently collapse the schedule.
    """
    if isinstance(schedule, Mapping):
        pairs = tuple(sorted((int(p), int(t)) for p, t in schedule.items()))
    else:
        pairs = tuple(sorted((int(p), 0) for p in schedule))
    for pid, time in pairs:
        if not 1 <= pid <= n:
            raise ConfigurationError(
                f"crash schedule names process p{pid}, outside the system 1..{n}"
            )
        if time < 0:
            raise ConfigurationError(f"crash time of p{pid} must be >= 0, got {time}")
    seen_pids: set = set()
    duplicates: set = set()
    for pid, _ in pairs:
        (duplicates if pid in seen_pids else seen_pids).add(pid)
    if duplicates:
        names = ", ".join(f"p{pid}" for pid in sorted(duplicates))
        raise ConfigurationError(
            f"crash schedule names {names} more than once; a process can "
            "crash at most once, so each pid may appear at most once"
        )
    return pairs


def normalize_params(params: Union[Mapping[str, Hashable], Iterable[Tuple[str, Hashable]]]) -> Tuple[Tuple[str, Hashable], ...]:
    """Canonicalise extra parameters to a sorted tuple of pairs."""
    items = params.items() if isinstance(params, Mapping) else params
    return tuple(sorted((str(key), value) for key, value in items))


def _canonical_value(value: Hashable) -> Hashable:
    """Rewrite a params value so that its ``repr`` is order-stable.

    Scalars and tuples pass through unchanged (their ``repr`` is already
    deterministic, and existing derived seeds must not shift).
    Frozensets iterate in ``PYTHONHASHSEED``-dependent order, so they are
    replaced by a marked tuple of their elements sorted by canonical
    ``repr`` — without this, a fingerprint or derived seed computed over
    a frozenset param would differ between sessions.
    """
    if isinstance(value, tuple):
        return tuple(_canonical_value(item) for item in value)
    if isinstance(value, frozenset):
        return ("__frozenset__",) + tuple(
            sorted((_canonical_value(item) for item in value), key=repr)
        )
    return value


def _canonical_params(
    params: Tuple[Tuple[str, Hashable], ...]
) -> Tuple[Tuple[str, Hashable], ...]:
    """The hashing-side view of ``params`` (see :func:`_canonical_value`)."""
    return tuple((name, _canonical_value(value)) for name, value in params)


@dataclass(frozen=True)
class ScenarioSpec:
    """One scenario of a campaign: a single adversarial execution.

    Attributes
    ----------
    kind:
        Name of a registered scenario kind (see
        :mod:`repro.campaign.scenarios`); the kind owns the interpretation
        of the remaining fields.
    n, f, k:
        The parameter point: system size, failure bound, set-agreement
        parameter.
    scheduler:
        Scheduler name (``"round-robin"``, ``"random"``, ``"partitioning"``,
        ...); interpreted by the kind.
    seed:
        The grid seed of the scenario.  Schedulers never consume it
        directly — they are seeded with :meth:`derived_seed`.
    crashes:
        The planned crash schedule as sorted ``(pid, time)`` pairs; time 0
        means initially dead.  An empty tuple lets the kind derive its own
        schedule (the partitioning constructions do).
    max_steps:
        Step budget of the execution.
    params:
        Extra kind-specific knobs as sorted ``(name, value)`` pairs.
    recording:
        Name of the :class:`repro.simulation.recording.RecordingPolicy`
        the execution runs under (``"full"``, ``"decisions-only"`` or
        ``"verdict-only"``).  The policy is part of the spec's identity
        (and therefore of its store fingerprint), but deliberately *not*
        of :meth:`derived_seed` — the RNG stream, the schedule and the
        outcome are identical across recording policies.
    """

    kind: str
    n: int
    f: int
    k: int
    scheduler: str = "round-robin"
    seed: int = 0
    crashes: Tuple[Tuple[ProcessId, Time], ...] = ()
    max_steps: int = 10_000
    params: Tuple[Tuple[str, Hashable], ...] = ()
    recording: str = "full"

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ConfigurationError(f"n must be >= 1, got n={self.n}")
        if not 0 <= self.f < self.n:
            raise ConfigurationError(
                f"the failure bound must satisfy 0 <= f < n, got f={self.f}, n={self.n}"
            )
        if self.k < 1:
            raise ConfigurationError(f"k must be >= 1, got k={self.k}")
        if self.max_steps < 1:
            raise ConfigurationError(f"max_steps must be >= 1, got {self.max_steps}")
        if self.recording not in RECORDING_POLICY_NAMES:
            raise ConfigurationError(
                f"unknown recording policy {self.recording!r}; choose one of "
                f"{RECORDING_POLICY_NAMES}"
            )

    # -- identity ----------------------------------------------------------

    def identity(self) -> Tuple:
        """The full canonical identity of the scenario, as a plain tuple.

        This is the value the persistent store fingerprints
        (:class:`repro.store.ScenarioFingerprint`): two specs with equal
        identities produce equal outcomes, so one may be served from
        cache in place of the other.  Unlike :meth:`derived_seed` it
        *includes* ``max_steps`` — truncation (and therefore the outcome)
        depends on the step budget, while the RNG stream deliberately
        does not, so raising the budget extends a schedule instead of
        replacing it.
        """
        return (
            self.kind, self.n, self.f, self.k, self.scheduler, self.seed,
            self.crashes, self.max_steps, _canonical_params(self.params),
            self.recording,
        )

    # -- seeding -----------------------------------------------------------

    def derived_seed(self) -> int:
        """A stable 64-bit seed derived from the scenario's identity.

        Independent of execution order, worker assignment and
        ``PYTHONHASHSEED``; distinct scenarios of a grid get distinct
        streams with overwhelming probability.  ``recording`` (like
        ``max_steps``) is deliberately excluded: the RNG stream — and
        with it the schedule — must be bit-identical across recording
        policies.

        The sha256 is computed once per spec instance and memoised —
        telemetry sampling, fault plans and the batched kernel all
        consult the derived seed on the hot dispatch path.
        """
        cached = self.__dict__.get("_derived_seed")
        if cached is not None:
            return cached
        blob = repr(
            (self.kind, self.n, self.f, self.k, self.scheduler, self.seed,
             self.crashes, _canonical_params(self.params))
        ).encode()
        value = int.from_bytes(hashlib.sha256(blob).digest()[:8], "big")
        object.__setattr__(self, "_derived_seed", value)
        return value

    # -- serialisation hygiene ---------------------------------------------

    def __getstate__(self) -> dict:
        """Pickle only the declared fields, never the memo caches.

        The derived seed and the store fingerprint are cached on the
        instance (leading-underscore keys) after first use; shipping
        them would bloat every spec on the pool pipe and would let a
        stale cache masquerade as identity if the schema ever changed.
        """
        return {
            key: value
            for key, value in self.__dict__.items()
            if not key.startswith("_")
        }

    def __setstate__(self, state: dict) -> None:
        for key, value in state.items():
            object.__setattr__(self, key, value)

    # -- conveniences ------------------------------------------------------

    def param(self, name: str, default: Hashable = None) -> Hashable:
        """Look up an extra parameter by name."""
        for key, value in self.params:
            if key == name:
                return value
        return default

    @property
    def initially_dead(self) -> frozenset:
        """Processes whose planned crash time is 0."""
        return frozenset(pid for pid, time in self.crashes if time == 0)

    def label(self) -> str:
        """Compact human-readable identifier used in tables and details."""
        crash = (
            "{" + ",".join(f"p{p}@{t}" for p, t in self.crashes) + "}"
            if self.crashes
            else "-"
        )
        seed = f"/s{self.seed}" if self.scheduler not in DETERMINISTIC_SCHEDULERS else ""
        rec = f" rec={self.recording}" if self.recording != "full" else ""
        return f"{self.kind}(n={self.n},f={self.f},k={self.k}) {self.scheduler}{seed} crashes={crash}{rec}"


@dataclass(frozen=True)
class ScenarioOutcome:
    """The deterministic result of executing one scenario.

    ``verdict`` is ``"ok"`` (every property held), ``"violation"`` (at
    least one k-set agreement property failed — possibly by design, on the
    impossible side of a border) or ``"error"`` (the execution raised).
    Outcomes deliberately carry no timing information so that campaigns
    executed by different backends compare equal; ``steps`` and the
    message counters *are* part of the outcome — the executor maintains
    them under every recording policy, so they are deterministic too.
    """

    spec: ScenarioSpec
    verdict: str
    agreement_ok: bool = True
    validity_ok: bool = True
    termination_ok: bool = True
    distinct_decisions: int = 0
    decided: int = 0
    steps: int = 0
    truncated: bool = False
    violations: Tuple[str, ...] = ()
    error: str = ""
    messages_sent: int = 0
    messages_delivered: int = 0

    @property
    def all_ok(self) -> bool:
        """``True`` when every property held and nothing raised."""
        return self.verdict == "ok"

    def failed_properties(self) -> Tuple[str, ...]:
        """Names of the violated properties, in canonical order."""
        failed = []
        if not self.agreement_ok:
            failed.append("agreement")
        if not self.validity_ok:
            failed.append("validity")
        if not self.termination_ok:
            failed.append("termination")
        return tuple(failed)

    def describe(self) -> str:
        """One line: which properties failed, under which schedule/seed."""
        if self.verdict == "error":
            return f"{self.spec.label()}: ERROR {self.error}"
        if self.all_ok:
            return f"{self.spec.label()}: all properties hold"
        return (
            f"{self.spec.label()}: {', '.join(self.failed_properties())} violated "
            f"({self.distinct_decisions} distinct decision(s), {self.decided} decided, "
            f"{self.steps} steps{', truncated' if self.truncated else ''})"
        )

    @classmethod
    def from_report(cls, spec: ScenarioSpec, report, run) -> "ScenarioOutcome":
        """Build an outcome from a ``PropertyReport`` and its ``Run``."""
        return cls(
            spec=spec,
            verdict="ok" if report.all_ok else "violation",
            agreement_ok=report.agreement_ok,
            validity_ok=report.validity_ok,
            termination_ok=report.termination_ok,
            distinct_decisions=len(report.distinct_decisions),
            decided=len(report.decided),
            steps=run.length,
            truncated=run.truncated,
            violations=tuple(report.violations),
            messages_sent=run.messages_sent(),
            messages_delivered=run.messages_delivered(),
        )

    @classmethod
    def from_error(cls, spec: ScenarioSpec, exc: BaseException) -> "ScenarioOutcome":
        """Build an ``"error"`` outcome from an exception."""
        return cls(
            spec=spec,
            verdict="error",
            agreement_ok=False,
            validity_ok=False,
            termination_ok=False,
            error=f"{type(exc).__name__}: {exc}",
        )
