"""The scenario-campaign engine.

Sweeps and workloads describe *what* to run — a declarative
:class:`~repro.campaign.grid.ScenarioGrid` over parameter points,
schedulers, seeds and crash schedules, compiled into flat
:class:`~repro.campaign.spec.ScenarioSpec` lists — and a
:class:`~repro.campaign.runner.CampaignRunner` decides *how*: serially,
in chunks, or across a pool of worker processes.  Determinism is the
core contract: every scenario derives its RNG stream from its own
identity, so all backends produce identical
:class:`~repro.campaign.runner.CampaignResult`\\ s.

Typical use::

    from repro.campaign import CampaignRunner, theorem8_specs

    specs = theorem8_specs([4, 5, 6], seeds=(1,), max_steps=8_000)
    result = CampaignRunner(backend="process", workers=4).run(specs)
    assert result.verdict_counts()["error"] == 0
"""

from repro.campaign.spec import (
    DETERMINISTIC_SCHEDULERS,
    ScenarioOutcome,
    ScenarioSpec,
    normalize_crashes,
    normalize_params,
)
from repro.campaign.grid import ScenarioGrid
from repro.campaign.scenarios import (
    build_adversary,
    corollary13_specs,
    get_kind,
    initial_crash_patterns,
    registered_kinds,
    scenario_kind,
    theorem8_impossible_grid,
    theorem8_point_specs,
    theorem8_solvable_grid,
    theorem8_specs,
)
from repro.campaign.codec import (
    outcome_from_dict,
    outcome_to_dict,
    spec_from_dict,
    spec_to_dict,
)
from repro.campaign.costmodel import (
    CostModel,
    OnlineCostModel,
    cost_key,
    plan_chunks,
)
from repro.campaign.runner import (
    CampaignResult,
    CampaignRunner,
    ScenarioEvent,
    run_scenario,
)
from repro.campaign.wire import (
    WireChunk,
    decode_chunk,
    encode_chunk,
    ensure_specs,
)

__all__ = [
    "DETERMINISTIC_SCHEDULERS",
    "ScenarioSpec",
    "ScenarioOutcome",
    "ScenarioGrid",
    "CampaignRunner",
    "CampaignResult",
    "ScenarioEvent",
    "run_scenario",
    "CostModel",
    "OnlineCostModel",
    "cost_key",
    "plan_chunks",
    "WireChunk",
    "encode_chunk",
    "decode_chunk",
    "ensure_specs",
    "spec_to_dict",
    "spec_from_dict",
    "outcome_to_dict",
    "outcome_from_dict",
    "scenario_kind",
    "get_kind",
    "registered_kinds",
    "build_adversary",
    "initial_crash_patterns",
    "theorem8_solvable_grid",
    "theorem8_impossible_grid",
    "theorem8_specs",
    "theorem8_point_specs",
    "corollary13_specs",
    "normalize_crashes",
    "normalize_params",
]
