"""Stable JSON codecs for campaign data.

The persistent result store (:mod:`repro.store`) and
:meth:`~repro.campaign.runner.CampaignResult.to_json` both need to move
:class:`~repro.campaign.spec.ScenarioSpec` and
:class:`~repro.campaign.spec.ScenarioOutcome` values through JSON without
losing the exact identity a campaign relies on: a decoded spec must
compare equal to the original (same ``derived_seed``, same store
fingerprint), and a decoded outcome must compare equal to a freshly
executed one — that equality is what lets a resumed campaign produce a
``CampaignResult`` identical to an uninterrupted run.

JSON has no tuples or frozensets, so ``params`` values (arbitrary
hashable scalars in practice) are encoded with explicit markers instead
of being silently turned into lists.  Unsupported value types raise
:class:`~repro.exceptions.ConfigurationError` at encode time — a loud
failure when persisting, never a quiet identity change when loading.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Mapping

from repro.exceptions import ConfigurationError
from repro.campaign.spec import ScenarioOutcome, ScenarioSpec

__all__ = [
    "encode_value",
    "decode_value",
    "spec_to_dict",
    "spec_from_dict",
    "outcome_to_dict",
    "outcome_from_dict",
]

_TUPLE_KEY = "__tuple__"
_FROZENSET_KEY = "__frozenset__"


def encode_value(value: Hashable) -> Any:
    """Encode one ``params`` value into JSON-safe form.

    Scalars (``None``, ``bool``, ``int``, ``float``, ``str``) pass
    through; tuples and frozensets become marked objects so that decoding
    restores the exact hashable value.  Frozenset elements are sorted by
    their encoded representation, making the encoding deterministic.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, tuple):
        return {_TUPLE_KEY: [encode_value(item) for item in value]}
    if isinstance(value, frozenset):
        encoded = [encode_value(item) for item in value]
        return {_FROZENSET_KEY: sorted(encoded, key=repr)}
    raise ConfigurationError(
        f"cannot persist a parameter value of type {type(value).__name__!r}: {value!r}; "
        "supported types are None, bool, int, float, str, tuple and frozenset"
    )


def decode_value(value: Any) -> Hashable:
    """Invert :func:`encode_value`."""
    if isinstance(value, dict):
        if set(value) == {_TUPLE_KEY}:
            return tuple(decode_value(item) for item in value[_TUPLE_KEY])
        if set(value) == {_FROZENSET_KEY}:
            return frozenset(decode_value(item) for item in value[_FROZENSET_KEY])
        raise ConfigurationError(f"unrecognised encoded value: {value!r}")
    if isinstance(value, list):
        raise ConfigurationError(
            f"bare list in encoded campaign data: {value!r}; "
            "tuples must be encoded with an explicit marker"
        )
    return value


def spec_to_dict(spec: ScenarioSpec) -> Dict[str, Any]:
    """Encode a spec as a JSON-safe mapping (inverse: :func:`spec_from_dict`)."""
    return {
        "kind": spec.kind,
        "n": spec.n,
        "f": spec.f,
        "k": spec.k,
        "scheduler": spec.scheduler,
        "seed": spec.seed,
        "crashes": [[pid, time] for pid, time in spec.crashes],
        "max_steps": spec.max_steps,
        "params": [[name, encode_value(value)] for name, value in spec.params],
        "recording": spec.recording,
    }


def spec_from_dict(data: Mapping[str, Any]) -> ScenarioSpec:
    """Decode a spec; the result compares equal to the encoded original."""
    return ScenarioSpec(
        kind=data["kind"],
        n=int(data["n"]),
        f=int(data["f"]),
        k=int(data["k"]),
        scheduler=data["scheduler"],
        seed=int(data["seed"]),
        crashes=tuple((int(pid), int(time)) for pid, time in data["crashes"]),
        max_steps=int(data["max_steps"]),
        params=tuple((str(name), decode_value(value)) for name, value in data["params"]),
        recording=data.get("recording", "full"),
    )


def outcome_to_dict(outcome: ScenarioOutcome) -> Dict[str, Any]:
    """Encode an outcome, spec included, as a JSON-safe mapping."""
    return {
        "spec": spec_to_dict(outcome.spec),
        "verdict": outcome.verdict,
        "agreement_ok": outcome.agreement_ok,
        "validity_ok": outcome.validity_ok,
        "termination_ok": outcome.termination_ok,
        "distinct_decisions": outcome.distinct_decisions,
        "decided": outcome.decided,
        "steps": outcome.steps,
        "truncated": outcome.truncated,
        "violations": list(outcome.violations),
        "error": outcome.error,
        "messages_sent": outcome.messages_sent,
        "messages_delivered": outcome.messages_delivered,
    }


def outcome_from_dict(data: Mapping[str, Any]) -> ScenarioOutcome:
    """Decode an outcome; equal to a freshly executed one for the same spec."""
    return ScenarioOutcome(
        spec=spec_from_dict(data["spec"]),
        verdict=data["verdict"],
        agreement_ok=bool(data["agreement_ok"]),
        validity_ok=bool(data["validity_ok"]),
        termination_ok=bool(data["termination_ok"]),
        distinct_decisions=int(data["distinct_decisions"]),
        decided=int(data["decided"]),
        steps=int(data["steps"]),
        truncated=bool(data["truncated"]),
        violations=tuple(data["violations"]),
        error=data["error"],
        # Tolerant decode: archived payloads predate the message counters.
        messages_sent=int(data.get("messages_sent", 0)),
        messages_delivered=int(data.get("messages_delivered", 0)),
    )
