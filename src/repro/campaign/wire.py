"""Compact wave shipping: the campaign dispatch wire format.

Under the process backend every task used to cross the pool pipe as a
pickled tuple of full :class:`~repro.campaign.spec.ScenarioSpec`
objects.  The specs of one chunk or wave are near-identical — a grid
varies one or two axes at a time — so almost every byte shipped was a
repeat of the previous spec.  This module replaces that with a
*self-contained* compact descriptor: one template (the field values of
the chunk's first spec) plus, per spec, only the ``(field, value)``
pairs that differ from it.  Workers re-expand the descriptor into real
specs through a memoised decode, so a retried or bisected task re-ships
only its (re-encoded) slice and the expansion cost is paid once per
distinct descriptor per worker.

The contract is **round-trip equality**, pinned by
``tests/campaign/test_wire.py``: ``decode_chunk(encode_chunk(specs)) ==
tuple(specs)`` for *any* spec sequence — mixed kinds, crash schedules,
params, every recording policy.  Decoded specs re-run
:meth:`ScenarioSpec.__post_init__` validation and recompute their
derived seeds and fingerprints from identical field values, so outcomes
cannot depend on whether a spec travelled whole or compact.  This is
also the wire format a future distributed shard coordinator ships over
the network (ROADMAP open item 2): a shard is exactly a descriptor.

Nothing here imports the runner or the store — the codec sits below
both, like :mod:`repro.campaign.spec` itself.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, fields as dataclass_fields
from functools import lru_cache
from typing import Any, Sequence, Tuple, Union

from repro.campaign.spec import ScenarioSpec

__all__ = [
    "WIRE_FORMAT",
    "WireChunk",
    "encode_chunk",
    "decode_chunk",
    "ensure_specs",
    "wire_bytes",
    "raw_bytes",
]

#: Format tag carried by every descriptor.  Bump on any change to the
#: encoding so a mixed-version pool fails loudly instead of mis-expanding.
WIRE_FORMAT = 1

#: The spec fields, in declaration order — the delta indices below index
#: into this tuple.  Derived from the dataclass so the codec can never
#: silently fall out of sync with :class:`ScenarioSpec`.
SPEC_FIELDS: Tuple[str, ...] = tuple(
    f.name for f in dataclass_fields(ScenarioSpec)
)


@dataclass(frozen=True)
class WireChunk:
    """One chunk/wave of scenario specs in compact template+delta form.

    ``template`` holds the field values of the first spec (in
    :data:`SPEC_FIELDS` order); ``deltas`` holds, per spec, the sorted
    ``(field_index, value)`` pairs where that spec differs from the
    template.  The first spec's delta is therefore always empty.  The
    descriptor is hashable (specs are built from hashable data), which
    is what lets worker-side decoding memoise on the descriptor itself.
    """

    template: Tuple[Any, ...]
    deltas: Tuple[Tuple[Tuple[int, Any], ...], ...]
    format: int = WIRE_FORMAT

    def __len__(self) -> int:
        return len(self.deltas)


def encode_chunk(specs: Sequence[ScenarioSpec]) -> WireChunk:
    """Encode a spec sequence as a compact self-contained descriptor."""
    spec_tuple = tuple(specs)
    if not spec_tuple:
        return WireChunk(template=(), deltas=())
    template = tuple(getattr(spec_tuple[0], name) for name in SPEC_FIELDS)
    deltas = tuple(
        tuple(
            (index, value)
            for index, name in enumerate(SPEC_FIELDS)
            if (value := getattr(spec, name)) != template[index]
        )
        for spec in spec_tuple
    )
    return WireChunk(template=template, deltas=deltas)


@lru_cache(maxsize=512)
def decode_chunk(chunk: WireChunk) -> Tuple[ScenarioSpec, ...]:
    """Expand a descriptor back into specs (memoised per descriptor).

    The cache makes a retried task's re-expansion free and keeps one
    worker from re-validating the same descriptor twice.  Raises
    :class:`ValueError` on a format tag this build does not speak.
    """
    if chunk.format != WIRE_FORMAT:
        raise ValueError(
            f"wire descriptor has format {chunk.format!r}; this build speaks "
            f"format {WIRE_FORMAT}"
        )
    if not chunk.deltas:
        return ()
    specs = []
    for delta in chunk.deltas:
        values = list(chunk.template)
        for index, value in delta:
            values[index] = value
        specs.append(ScenarioSpec(**dict(zip(SPEC_FIELDS, values))))
    return tuple(specs)


def ensure_specs(
    specs: Union[WireChunk, Sequence[ScenarioSpec]],
) -> Sequence[ScenarioSpec]:
    """Decode a descriptor; pass plain spec sequences through untouched.

    This is the single entry point the worker task functions call, so
    they accept either form — the in-process backends hand them real
    specs, the pool path ships descriptors.
    """
    if isinstance(specs, WireChunk):
        return decode_chunk(specs)
    return specs


def wire_bytes(chunk: WireChunk) -> int:
    """Bytes the descriptor occupies on the pool pipe."""
    return len(pickle.dumps(chunk, protocol=pickle.HIGHEST_PROTOCOL))


def raw_bytes(specs: Sequence[ScenarioSpec]) -> int:
    """Bytes the same specs would have cost shipped whole (the old way)."""
    return len(pickle.dumps(tuple(specs), protocol=pickle.HIGHEST_PROTOCOL))
