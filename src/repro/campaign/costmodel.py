"""Cost-model work scheduling: size chunks by expected cost, not count.

The even-split chunker divides a campaign into ``4 × workers`` pieces no
matter what the pieces cost, so a chunk of ``n=64`` scenarios takes an
order of magnitude longer than a chunk of ``n=8`` ones and the pool
idles behind the straggler.  A :class:`CostModel` estimates per-scenario
cost from ``(kind, n, f)`` history — the same key the batched kernel
groups waves by — and :func:`plan_chunks` sizes chunks toward a target
task latency instead, submitting the longest-expected chunks first so
stragglers start early rather than last.

Two properties are load-bearing and pinned by
``tests/campaign/test_costmodel.py``:

* **Chunking is a pure function of ``(specs, model snapshot, target)``.**
  It never consults worker counts, wall clocks or anything else that
  varies between runs, so two campaigns over the same specs plan the
  same chunks — and because outcomes are per-spec deterministic and
  reassembled by input position, the :class:`CampaignResult` is
  identical *whatever* model (or none) produced the plan.
* **No history degrades to today's behaviour.**  With ``model=None``
  the runner falls back to the even split, so the cost model is a pure
  scheduling optimisation, impossible to observe in the results.

History sources: a finished :class:`~repro.campaign.runner.CampaignResult`
(:meth:`CostModel.from_result`), explicit samples
(:meth:`CostModel.from_samples`), a provenance journal joined to a store
(:meth:`CostModel.from_journal` — wall seconds from
:func:`repro.provenance.queries.aggregate_cost`), or a running
:class:`OnlineCostModel` fed scenario by scenario (the
:class:`~repro.store.caching.CachingRunner` accepts one and feeds it
every executed outcome).  The model a future shard coordinator uses to
place shards is exactly this one — see ROADMAP open item 2.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.campaign.spec import ScenarioSpec
from repro.exceptions import ConfigurationError

__all__ = ["CostKey", "CostModel", "OnlineCostModel", "cost_key", "plan_chunks"]

#: The granularity cost is modelled at — same key the batched kernel
#: groups waves by, and the key a shard coordinator would balance on.
CostKey = Tuple[str, int, int]

#: Floor for per-scenario estimates: a zero or negative estimate would
#: let one chunk swallow the whole campaign.
_MIN_ESTIMATE = 1e-6

#: Upper bound on scenarios per planned chunk, whatever the estimates
#: say — bounds worst-case pool serialisation when history claims
#: everything is free.
DEFAULT_MAX_CHUNK = 256


def cost_key(spec: ScenarioSpec) -> CostKey:
    """The ``(kind, n, f)`` cost-model key of a spec."""
    return (spec.kind, spec.n, spec.f)


@dataclass(frozen=True)
class CostModel:
    """A frozen snapshot of per-``(kind, n, f)`` mean scenario cost.

    ``costs`` maps cost keys to mean wall seconds per scenario;
    ``default_seconds`` is the estimate for keys without history (the
    mean over all known keys when built by the constructors, an
    explicit floor otherwise).  The snapshot is immutable and hashable:
    a chunk plan computed from it is reproducible by construction.
    """

    costs: Tuple[Tuple[CostKey, float], ...] = ()
    default_seconds: float = 0.01

    def __post_init__(self) -> None:
        object.__setattr__(self, "costs", tuple(sorted(dict(self.costs).items())))
        if self.default_seconds <= 0:
            raise ConfigurationError(
                f"default_seconds must be > 0, got {self.default_seconds}"
            )
        object.__setattr__(self, "_table", dict(self.costs))

    def estimate(self, spec: ScenarioSpec) -> float:
        """Expected wall seconds for one scenario (never <= 0)."""
        seconds = self._table.get(cost_key(spec), self.default_seconds)
        return max(seconds, _MIN_ESTIMATE)

    def estimate_total(self, specs: Sequence[ScenarioSpec]) -> float:
        """Expected wall seconds for a whole spec sequence."""
        return sum(self.estimate(spec) for spec in specs)

    def known_keys(self) -> Tuple[CostKey, ...]:
        """The keys this snapshot has history for, sorted."""
        return tuple(key for key, _ in self.costs)

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_samples(
        cls,
        samples: Iterable[Tuple[CostKey, float]],
        *,
        default_seconds: Optional[float] = None,
    ) -> "CostModel":
        """Build from ``(cost_key, seconds)`` observations (mean per key)."""
        totals: Dict[CostKey, float] = {}
        counts: Dict[CostKey, int] = {}
        for key, seconds in samples:
            totals[key] = totals.get(key, 0.0) + max(float(seconds), 0.0)
            counts[key] = counts.get(key, 0) + 1
        means = {key: totals[key] / counts[key] for key in totals}
        if default_seconds is None:
            default_seconds = (
                sum(means.values()) / len(means) if means else 0.01
            )
        return cls(
            costs=tuple(sorted(means.items())),
            default_seconds=max(default_seconds, _MIN_ESTIMATE),
        )

    @classmethod
    def from_result(cls, result: Any) -> "CostModel":
        """Build from a finished campaign's outcomes + scenario timings.

        ``result`` is duck-typed (a
        :class:`~repro.campaign.runner.CampaignResult` or anything with
        ``outcomes`` and ``scenario_seconds``); positions without a
        timing contribute nothing.
        """
        return cls.from_samples(
            (cost_key(outcome.spec), seconds)
            for outcome, seconds in zip(result.outcomes, result.scenario_seconds)
        )

    @classmethod
    def from_journal(cls, replay: Any, store: Any) -> "CostModel":
        """Build from a journal replay joined to the store's specs.

        Uses :func:`repro.provenance.queries.aggregate_cost` grouped by
        ``("kind", "n", "f")`` — each region's journaled wall seconds
        divided by its scenario count.  Fingerprints the store cannot
        resolve are skipped (they carry no spec to key on).
        """
        from repro.provenance.queries import aggregate_cost

        groups, _unresolved = aggregate_cost(store, replay, by=("kind", "n", "f"))
        samples = [
            (aggregate.key, aggregate.usage.seconds / aggregate.scenarios)
            for aggregate in groups.values()
            if aggregate.scenarios
        ]
        return cls.from_samples(samples)


class OnlineCostModel:
    """A thread-safe running mean per cost key, snapshot on demand.

    Feed it from wherever timings appear — the
    :class:`~repro.store.caching.CachingRunner` calls
    :meth:`observe` for every executed outcome when given one — then
    take a :meth:`snapshot` to plan the *next* campaign.  The live model
    is deliberately never consulted mid-run: chunk plans are functions
    of a frozen snapshot, not of a moving average.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._totals: Dict[CostKey, float] = {}
        self._counts: Dict[CostKey, int] = {}

    def observe(self, spec: ScenarioSpec, seconds: float) -> None:
        """Record one scenario's wall seconds."""
        key = cost_key(spec)
        with self._lock:
            self._totals[key] = self._totals.get(key, 0.0) + max(float(seconds), 0.0)
            self._counts[key] = self._counts.get(key, 0) + 1

    def observations(self) -> int:
        """How many scenarios have been observed."""
        with self._lock:
            return sum(self._counts.values())

    def snapshot(self) -> CostModel:
        """A frozen :class:`CostModel` of the means observed so far."""
        with self._lock:
            means = {
                key: self._totals[key] / self._counts[key]
                for key in self._counts
                if self._counts[key]
            }
        default = sum(means.values()) / len(means) if means else 0.01
        return CostModel(
            costs=tuple(sorted(means.items())),
            default_seconds=max(default, _MIN_ESTIMATE),
        )


def plan_chunks(
    specs: Sequence[ScenarioSpec],
    model: CostModel,
    *,
    target_seconds: float = 0.25,
    max_chunk: int = DEFAULT_MAX_CHUNK,
) -> List[Tuple[int, ...]]:
    """Group spec positions into cost-sized chunks, longest-expected first.

    Consecutive specs (input order) are accumulated into a chunk until
    its expected cost reaches ``target_seconds`` or it holds
    ``max_chunk`` scenarios; the finished chunks are then ordered by
    expected cost, descending (ties broken by first position, so the
    order is total and deterministic).  Every position appears exactly
    once — callers reassemble outcomes by position, which is why the
    submission order cannot influence the campaign result.

    A **pure function** of its arguments: no worker counts, no clocks.
    """
    if target_seconds <= 0:
        raise ConfigurationError(
            f"target_seconds must be > 0, got {target_seconds}"
        )
    if max_chunk < 1:
        raise ConfigurationError(f"max_chunk must be >= 1, got {max_chunk}")
    chunks: List[Tuple[float, Tuple[int, ...]]] = []
    positions: List[int] = []
    cost = 0.0
    for position, spec in enumerate(specs):
        positions.append(position)
        cost += model.estimate(spec)
        if cost >= target_seconds or len(positions) >= max_chunk:
            chunks.append((cost, tuple(positions)))
            positions, cost = [], 0.0
    if positions:
        chunks.append((cost, tuple(positions)))
    chunks.sort(key=lambda item: (-item[0], item[1][0]))
    return [group for _cost, group in chunks]
