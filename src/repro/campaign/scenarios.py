"""Registered scenario kinds: the executable semantics of a spec.

A *scenario kind* is a named, module-level function mapping a
:class:`~repro.campaign.spec.ScenarioSpec` to a
:class:`~repro.campaign.spec.ScenarioOutcome`.  Kinds are registered in a
process-wide registry so that scenario specs stay plain data — a worker
process receives the spec, looks the kind up by name and executes it,
which is what makes the multiprocessing backend possible without
pickling closures.

The kinds shipped here cover the paper's two reproduced borders:

* ``theorem8-solvable`` / ``theorem8-impossible`` — one execution of the
  Section VI protocol on either side of the Theorem 8 border
  (``k * n > (k + 1) * f``), under the spec's scheduler and planned
  initial-crash schedule, respectively the Section VI partitioning
  construction with ``k + 1`` isolated groups of size ``n - f``.
* ``corollary13-k1`` / ``corollary13-kmax`` / ``corollary13-middle`` —
  the three regimes of Corollary 13: the ``(Sigma, Omega)`` consensus
  protocol at ``k = 1``, the ``Sigma_{n-1}`` protocol at ``k = n - 1``
  and the Theorem 10 violation construction in between.

New workloads plug in with :func:`scenario_kind`; the grid/runner layers
never need to change.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Iterable, List, Sequence, Tuple

from repro.algorithms.flawed_candidate import FlawedQuorumKSet
from repro.algorithms.kset_initial_crash import KSetInitialCrash
from repro.algorithms.sigma_kset import SigmaKSetAgreement
from repro.algorithms.sigma_omega_consensus import SigmaOmegaConsensus
from repro.campaign.grid import ScenarioGrid
from repro.campaign.spec import ScenarioOutcome, ScenarioSpec
from repro.core.borders import theorem8_verdict
from repro.core.ksetagreement import KSetAgreementProblem
from repro.exceptions import ConfigurationError
from repro.failure_detectors.base import FailurePattern
from repro.failure_detectors.combined import sigma_omega_k
from repro.failure_detectors.sigma import SigmaK
from repro.models.asynchronous import asynchronous_model
from repro.models.initial_crash import initial_crash_model
from repro.partitioning.scenarios import Theorem10Scenario
from repro.simulation.adversary import PartitioningAdversary
from repro.simulation.executor import ExecutionSettings, execute
from repro.simulation.recording import RecordingPolicy
from repro.simulation.scheduler import Adversary, RandomScheduler, RoundRobinScheduler
from repro.telemetry.spans import span as _span

__all__ = [
    "scenario_kind",
    "get_kind",
    "registered_kinds",
    "build_adversary",
    "build_settings",
    "initial_crash_patterns",
    "execute_theorem8_solvable",
    "execute_theorem8_impossible",
    "theorem8_solvable_grid",
    "theorem8_impossible_grid",
    "theorem8_specs",
    "theorem8_point_specs",
    "corollary13_specs",
]

ScenarioKind = Callable[[ScenarioSpec], ScenarioOutcome]

_KINDS: Dict[str, ScenarioKind] = {}


def scenario_kind(name: str) -> Callable[[ScenarioKind], ScenarioKind]:
    """Register a scenario kind under ``name`` (decorator)."""

    def register(fn: ScenarioKind) -> ScenarioKind:
        if name in _KINDS:
            raise ConfigurationError(f"scenario kind {name!r} is already registered")
        _KINDS[name] = fn
        return fn

    return register


def get_kind(name: str) -> ScenarioKind:
    """Look a scenario kind up by name, raising early for unknown kinds."""
    try:
        return _KINDS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown scenario kind {name!r}; registered kinds: {registered_kinds()}"
        ) from None


def registered_kinds() -> Tuple[str, ...]:
    """The names of all registered scenario kinds, sorted."""
    return tuple(sorted(_KINDS))


def build_adversary(spec: ScenarioSpec) -> Adversary:
    """Construct the spec's scheduler.

    Seeded schedulers are seeded with :meth:`ScenarioSpec.derived_seed`,
    never with the raw grid seed, so the RNG stream depends only on the
    scenario's identity.
    """
    if spec.scheduler == "round-robin":
        return RoundRobinScheduler()
    if spec.scheduler == "random":
        return RandomScheduler(
            spec.derived_seed(),
            delivery_bias=float(spec.param("delivery_bias", 0.5)),
            max_delay=int(spec.param("max_delay", 20)),
        )
    raise ConfigurationError(
        f"scenario kind {spec.kind!r} cannot build scheduler {spec.scheduler!r}"
    )


def build_settings(spec: ScenarioSpec) -> ExecutionSettings:
    """The spec's execution settings: step budget plus recording policy.

    Campaign outcomes only consume decisions, flags and counters, so a
    ``"verdict-only"`` spec skips all per-step trace allocation while
    producing the identical :class:`ScenarioOutcome`.
    """
    return ExecutionSettings(
        max_steps=spec.max_steps,
        recording=RecordingPolicy.coerce(spec.recording),
    )


def initial_crash_patterns(n: int, f: int, seeds: Sequence[int]) -> List[frozenset]:
    """Representative initial-crash sets: none, largest, smallest, seeded."""
    processes = tuple(range(1, n + 1))
    patterns = [frozenset(), frozenset(processes[-f:]) if f else frozenset(),
                frozenset(processes[:f]) if f else frozenset()]
    for seed in seeds:
        rng = random.Random(seed)
        patterns.append(frozenset(rng.sample(processes, f)) if f else frozenset())
    unique: List[frozenset] = []
    for pattern in patterns:
        if pattern not in unique:
            unique.append(pattern)
    return unique


# -- Theorem 8 ---------------------------------------------------------------


def execute_theorem8_solvable(spec: ScenarioSpec):
    """One run of the Section VI protocol on the solvable side.

    Returns ``(run, report)``; the registered kind wraps this into an
    outcome, while :func:`repro.analysis.border_sweep.observe_solvable`
    uses it directly to hand full property reports to callers.
    """
    algorithm = KSetInitialCrash(spec.n, spec.f)
    model = initial_crash_model(spec.n, spec.f)
    proposals = {pid: pid for pid in model.processes}
    pattern = FailurePattern(model.processes, dict(spec.crashes))
    run = execute(
        algorithm,
        model,
        proposals,
        adversary=build_adversary(spec),
        failure_pattern=pattern,
        settings=build_settings(spec),
    )
    with _span("decision", k=spec.k):
        report = KSetAgreementProblem(spec.k).evaluate(run, proposals=proposals)
    return run, report


def execute_theorem8_impossible(spec: ScenarioSpec):
    """The Section VI partitioning construction on the impossible side.

    Builds ``k + 1`` disjoint groups of size ``n - f`` (feasible exactly
    when ``(k + 1) * (n - f) <= n``, i.e. on the impossible side of the
    border), declares any leftover processes initially dead and runs the
    protocol under the partitioning adversary.  Returns ``(run, report)``.
    """
    n, f, k = spec.n, spec.f, spec.k
    group_size = n - f
    if (k + 1) * group_size > n:
        raise ConfigurationError(
            f"cannot build {k + 1} disjoint groups of size {n - f} out of {n} "
            f"processes; (n={n}, f={f}, k={k}) is not on the impossible side"
        )
    groups = [
        frozenset(range(i * group_size + 1, (i + 1) * group_size + 1))
        for i in range(k + 1)
    ]
    covered = frozenset().union(*groups)
    model = initial_crash_model(n, f)
    leftover = frozenset(model.processes) - covered
    pattern = FailurePattern.initially_dead(model.processes, leftover)
    algorithm = KSetInitialCrash(n, f)
    proposals = {pid: pid for pid in model.processes}
    run = execute(
        algorithm,
        model,
        proposals,
        adversary=PartitioningAdversary(groups),
        failure_pattern=pattern,
        settings=build_settings(spec),
    )
    with _span("decision", k=k):
        report = KSetAgreementProblem(k).evaluate(run, proposals=proposals)
    return run, report


@scenario_kind("theorem8-solvable")
def _run_theorem8_solvable(spec: ScenarioSpec) -> ScenarioOutcome:
    run, report = execute_theorem8_solvable(spec)
    return ScenarioOutcome.from_report(spec, report, run)


@scenario_kind("theorem8-impossible")
def _run_theorem8_impossible(spec: ScenarioSpec) -> ScenarioOutcome:
    run, report = execute_theorem8_impossible(spec)
    return ScenarioOutcome.from_report(spec, report, run)


def theorem8_solvable_grid(
    n_values: Sequence[int],
    *,
    seeds: Sequence[int] = (1, 2),
    max_steps: int = 20_000,
    recording: str = "full",
) -> ScenarioGrid:
    """The solvable side of the Theorem 8 sweep as a declarative grid."""
    seeds = tuple(seeds)
    return ScenarioGrid(
        kinds=("theorem8-solvable",),
        n_values=tuple(n_values),
        schedulers=("round-robin", "random"),
        seeds=seeds,
        crash_sets=lambda n, f: initial_crash_patterns(n, f, seeds),
        point_filter=lambda n, f, k: theorem8_verdict(n, f, k).is_solvable,
        max_steps=max_steps,
        recording=recording,
    )


def theorem8_impossible_grid(
    n_values: Sequence[int],
    *,
    max_steps: int = 20_000,
    recording: str = "full",
) -> ScenarioGrid:
    """The impossible side: one partitioning construction per point."""
    return ScenarioGrid(
        kinds=("theorem8-impossible",),
        n_values=tuple(n_values),
        schedulers=("partitioning",),
        point_filter=lambda n, f, k: not theorem8_verdict(n, f, k).is_solvable,
        max_steps=max_steps,
        recording=recording,
    )


def theorem8_specs(
    n_values: Sequence[int],
    *,
    seeds: Sequence[int] = (1, 2),
    max_steps: int = 20_000,
    recording: str = "full",
) -> Tuple[ScenarioSpec, ...]:
    """All scenarios of the Theorem 8 border sweep over ``n_values``."""
    solvable = theorem8_solvable_grid(
        n_values, seeds=seeds, max_steps=max_steps, recording=recording)
    impossible = theorem8_impossible_grid(
        n_values, max_steps=max_steps, recording=recording)
    return solvable.compile() + impossible.compile()


def theorem8_point_specs(
    n: int,
    f: int,
    k: int,
    *,
    seeds: Sequence[int] = (1, 2),
    max_steps: int = 20_000,
    recording: str = "full",
) -> Tuple[ScenarioSpec, ...]:
    """The solvable-side scenarios of a single parameter point."""
    grid = theorem8_solvable_grid(
        [n], seeds=seeds, max_steps=max_steps, recording=recording)
    grid = ScenarioGrid(
        kinds=grid.kinds,
        n_values=grid.n_values,
        f_values=(f,),
        k_values=(k,),
        schedulers=grid.schedulers,
        seeds=grid.seeds,
        crash_sets=grid.crash_sets,
        max_steps=grid.max_steps,
        recording=grid.recording,
    )
    return grid.compile()


# -- Corollary 13 ------------------------------------------------------------


@scenario_kind("corollary13-k1")
def _run_corollary13_k1(spec: ScenarioSpec) -> ScenarioOutcome:
    """The ``(Sigma, Omega)`` consensus protocol (``k = 1``)."""
    n = spec.n
    model = asynchronous_model(n, n - 1, failure_detector=sigma_omega_k(1, gst=0))
    proposals = {p: p for p in model.processes}
    run = execute(
        SigmaOmegaConsensus(n),
        model,
        proposals,
        adversary=build_adversary(spec),
        failure_pattern=FailurePattern(model.processes, dict(spec.crashes)),
        settings=build_settings(spec),
    )
    with _span("decision", k=1):
        report = KSetAgreementProblem(1).evaluate(run, proposals=proposals)
    return ScenarioOutcome.from_report(spec, report, run)


@scenario_kind("corollary13-kmax")
def _run_corollary13_kmax(spec: ScenarioSpec) -> ScenarioOutcome:
    """The ``Sigma_{n-1}`` set-agreement protocol (``k = n - 1``)."""
    n = spec.n
    model = asynchronous_model(n, n - 1, failure_detector=SigmaK(n - 1))
    proposals = {p: p for p in model.processes}
    run = execute(
        SigmaKSetAgreement(n),
        model,
        proposals,
        adversary=build_adversary(spec),
        failure_pattern=FailurePattern(model.processes, dict(spec.crashes)),
        settings=build_settings(spec),
    )
    with _span("decision", k=n - 1):
        report = KSetAgreementProblem(n - 1).evaluate(run, proposals=proposals)
    return ScenarioOutcome.from_report(spec, report, run)


@scenario_kind("corollary13-middle")
def _run_corollary13_middle(spec: ScenarioSpec) -> ScenarioOutcome:
    """The Theorem 10 violation construction (``2 <= k <= n - 2``)."""
    scenario = Theorem10Scenario(
        n=spec.n, k=spec.k, max_steps=spec.max_steps,
        recording=RecordingPolicy.coerce(spec.recording),
    )
    with _span("decision", k=spec.k):
        run, report = scenario.violation_run(FlawedQuorumKSet(spec.n, spec.k))
    return ScenarioOutcome.from_report(spec, report, run)


def corollary13_specs(
    n_values: Sequence[int],
    *,
    max_steps: int = 10_000,
    middle_max_steps: int = 6_000,
    recording: str = "full",
) -> Tuple[ScenarioSpec, ...]:
    """All scenarios of the Corollary 13 border sweep over ``n_values``.

    Mirrors the treatment of the E10 benchmark: the ``k = 1`` and
    ``k = n - 1`` protocols run under fair and random schedules with
    representative crash patterns, the middle regime runs the Theorem 10
    construction once per point.
    """
    specs: List[ScenarioSpec] = []
    for n in n_values:
        for k in range(1, n):
            if k == 1:
                specs.append(ScenarioSpec(
                    kind="corollary13-k1", n=n, f=n - 1, k=1,
                    scheduler="round-robin", max_steps=max_steps,
                    recording=recording,
                ))
                specs.append(ScenarioSpec(
                    kind="corollary13-k1", n=n, f=n - 1, k=1,
                    scheduler="random", seed=1, crashes=((n, 0),),
                    max_steps=max_steps, params=(("max_delay", 8),),
                    recording=recording,
                ))
            elif k == n - 1:
                specs.append(ScenarioSpec(
                    kind="corollary13-kmax", n=n, f=n - 1, k=k,
                    scheduler="round-robin", max_steps=max_steps,
                    recording=recording,
                ))
                specs.append(ScenarioSpec(
                    kind="corollary13-kmax", n=n, f=n - 1, k=k,
                    scheduler="round-robin",
                    crashes=tuple((p, 0) for p in range(1, n)),
                    max_steps=max_steps,
                    recording=recording,
                ))
                specs.append(ScenarioSpec(
                    kind="corollary13-kmax", n=n, f=n - 1, k=k,
                    scheduler="random", seed=2, crashes=((1, 0), (2, 5)),
                    max_steps=max_steps,
                    recording=recording,
                ))
            else:
                specs.append(ScenarioSpec(
                    kind="corollary13-middle", n=n, f=n - 1, k=k,
                    scheduler="partitioning", max_steps=middle_max_steps,
                    recording=recording,
                ))
    return tuple(specs)
