"""Provenance and cost accounting for scenario campaigns.

Three layers, all below the store/campaign packages in the import
graph (this package pulls in only the stdlib, ``repro.exceptions`` and
spec-level types):

- :mod:`repro.provenance.usage` — :class:`ResourceUsage`, the
  per-scenario cost record (wall time, steps, messages) carried on
  every :class:`~repro.campaign.runner.ScenarioEvent`;
- :mod:`repro.provenance.journal` — the append-only, torn-tail-safe
  campaign journal and its :func:`replay_ledger` reader;
- :mod:`repro.provenance.queries` / ``bench_history`` — cross-campaign
  aggregation over result stores and ``BENCH_*.json`` artifacts.

The CLI endpoint ``python -m repro.provenance.report`` is deliberately
not re-exported here: it joins the store layer lazily and must not be
imported as a side effect of importing this package.
"""

from repro.provenance.bench_history import (
    BenchRecord,
    bench_history,
    load_bench_dir,
    metric_trajectory,
)
from repro.provenance.journal import (
    JOURNAL_SCHEMA_VERSION,
    SCENARIO_DECISIONS,
    CampaignJournal,
    CampaignLedger,
    JournalReplay,
    read_journal,
    record_elapsed,
    replay_ledger,
)
from repro.provenance.queries import (
    GROUPABLE_DIMENSIONS,
    OutcomeAggregate,
    aggregate_cost,
    aggregate_outcomes,
    disagreement_report,
    disagreements,
)
from repro.provenance.usage import ResourceUsage

__all__ = [
    "JOURNAL_SCHEMA_VERSION",
    "SCENARIO_DECISIONS",
    "GROUPABLE_DIMENSIONS",
    "ResourceUsage",
    "CampaignJournal",
    "CampaignLedger",
    "JournalReplay",
    "read_journal",
    "record_elapsed",
    "replay_ledger",
    "OutcomeAggregate",
    "aggregate_outcomes",
    "aggregate_cost",
    "disagreements",
    "disagreement_report",
    "BenchRecord",
    "load_bench_dir",
    "bench_history",
    "metric_trajectory",
]
