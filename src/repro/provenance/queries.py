"""Cross-campaign queries over a result store (and optionally a journal).

A result store is content-addressed — great for caching, opaque for
analysis.  This module folds a store's outcomes back into the questions
a sweep is run to answer: how do verdicts and cost distribute across the
``(kind, n, f, k, scheduler)`` grid, which points disagreed with the
theorem, and (joined with a campaign journal) what did each grid region
actually *cost* to certify.

Stores are duck-typed (anything with ``items()`` yielding
``(fingerprint, outcome)`` pairs works) so this module never imports
``repro.store`` — which would cycle, since the store package's caching
layer imports the campaign runner, which carries provenance usage
records on its events.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.exceptions import ConfigurationError
from repro.provenance.usage import ResourceUsage

__all__ = [
    "GROUPABLE_DIMENSIONS",
    "OutcomeAggregate",
    "aggregate_outcomes",
    "aggregate_cost",
    "disagreements",
    "disagreement_report",
]

#: Spec dimensions a query may group by.
GROUPABLE_DIMENSIONS = ("kind", "n", "f", "k", "scheduler", "seed")


def _group_key(spec: Any, by: Sequence[str]) -> Tuple[Any, ...]:
    return tuple(getattr(spec, dimension) for dimension in by)


def _check_dimensions(by: Sequence[str]) -> Tuple[str, ...]:
    by = tuple(by)
    unknown = [dimension for dimension in by if dimension not in GROUPABLE_DIMENSIONS]
    if unknown:
        raise ConfigurationError(
            f"cannot group by {unknown}; known dimensions: {GROUPABLE_DIMENSIONS}"
        )
    return by


@dataclass
class OutcomeAggregate:
    """One grid region's roll-up of outcomes and simulated work."""

    key: Tuple[Any, ...]
    scenarios: int = 0
    ok: int = 0
    violation: int = 0
    error: int = 0
    usage: ResourceUsage = field(default_factory=ResourceUsage)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "key": self.key,
            "scenarios": self.scenarios,
            "ok": self.ok,
            "violation": self.violation,
            "error": self.error,
            "seconds": round(self.usage.seconds, 6),
            "steps": self.usage.steps,
            "messages_sent": self.usage.messages_sent,
            "messages_delivered": self.usage.messages_delivered,
        }


def aggregate_outcomes(
    store: Any,
    by: Sequence[str] = ("kind", "n", "scheduler"),
) -> Dict[Tuple[Any, ...], OutcomeAggregate]:
    """Roll every stored outcome up by the given spec dimensions.

    The ``usage`` of each aggregate counts simulated work only (steps
    and messages — wall time is not stored with outcomes; join a
    journal via :func:`aggregate_cost` for seconds).
    """
    by = _check_dimensions(by)
    groups: Dict[Tuple[Any, ...], OutcomeAggregate] = {}
    for _fingerprint, outcome in store.items():
        key = _group_key(outcome.spec, by)
        aggregate = groups.get(key)
        if aggregate is None:
            aggregate = groups[key] = OutcomeAggregate(key=key)
        aggregate.scenarios += 1
        verdict = outcome.verdict
        if verdict == "ok":
            aggregate.ok += 1
        elif verdict == "violation":
            aggregate.violation += 1
        else:
            aggregate.error += 1
        aggregate.usage = aggregate.usage + ResourceUsage(
            steps=outcome.steps,
            messages_sent=outcome.messages_sent,
            messages_delivered=outcome.messages_delivered,
        )
    return groups


def aggregate_cost(
    store: Any,
    replay: Any,
    by: Sequence[str] = ("kind", "n", "scheduler"),
    *,
    include_cached: bool = False,
) -> Tuple[Dict[Tuple[Any, ...], OutcomeAggregate], Tuple[str, ...]]:
    """Join journal cost records to stored specs and roll up by dimension.

    ``replay`` is a :class:`~repro.provenance.journal.JournalReplay`
    (or anything with ``scenario_records``).  Each ``ran`` record — and
    each ``cached`` record when ``include_cached`` is set — contributes
    its full :class:`ResourceUsage` (including wall seconds) to the grid
    region of the spec its fingerprint resolves to in the store.

    Returns the aggregates plus the fingerprints that could not be
    resolved (journaled against a store that has since been pruned, or a
    different store entirely) — callers decide whether unresolved cost
    is an error.
    """
    by = _check_dimensions(by)
    specs: Dict[str, Any] = {
        fingerprint: outcome.spec for fingerprint, outcome in store.items()
    }
    groups: Dict[Tuple[Any, ...], OutcomeAggregate] = {}
    unresolved: List[str] = []
    for record in replay.scenario_records:
        decision = record["decision"]
        if decision == "skipped":
            continue
        if decision == "cached" and not include_cached:
            continue
        spec = specs.get(record["fp"])
        if spec is None:
            unresolved.append(record["fp"])
            continue
        key = _group_key(spec, by)
        aggregate = groups.get(key)
        if aggregate is None:
            aggregate = groups[key] = OutcomeAggregate(key=key)
        aggregate.scenarios += 1
        if record.get("verdict") == "ok":
            aggregate.ok += 1
        elif record.get("verdict") == "violation":
            aggregate.violation += 1
        else:
            aggregate.error += 1
        aggregate.usage = aggregate.usage + ResourceUsage.from_dict(
            record.get("usage", {})
        )
    return groups, tuple(unresolved)


def disagreements(store: Any) -> Tuple[Any, ...]:
    """Every stored outcome whose verdict is not ``ok``, worst first."""
    flagged = [
        outcome
        for _fingerprint, outcome in store.items()
        if outcome.verdict != "ok"
    ]
    rank = {"violation": 0, "error": 1}
    flagged.sort(
        key=lambda outcome: (
            rank.get(outcome.verdict, 2),
            outcome.spec.kind,
            outcome.spec.n,
            outcome.spec.f,
            outcome.spec.k,
            outcome.spec.scheduler,
            outcome.spec.seed,
        )
    )
    return tuple(flagged)


def disagreement_report(store: Any) -> str:
    """Human-readable drill-down of non-ok outcomes (empty-safe)."""
    flagged = disagreements(store)
    if not flagged:
        return "no disagreements: every stored outcome is ok"
    lines = [f"{len(flagged)} non-ok outcome(s):"]
    for outcome in flagged:
        spec = outcome.spec
        detail = ", ".join(outcome.violations) if outcome.violations else outcome.error
        lines.append(
            f"  [{outcome.verdict}] {spec.kind} n={spec.n} f={spec.f} "
            f"k={spec.k} {spec.scheduler} seed={spec.seed}"
            + (f" — {detail}" if detail else "")
        )
    return "\n".join(lines)
