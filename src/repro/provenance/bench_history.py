"""Queryable history over ``BENCH_*.json`` benchmark artifacts.

CI's benchmark smoke job emits one ``BENCH_<experiment>.json`` per
benchmark (see ``benchmarks/conftest.py``), each a flat dict of metric
name → value plus a ``name`` field.  Downloaded artifact directories —
one per run, e.g. ``bench-artifacts/run-41/``, ``run-42/`` — become a
perf *trajectory* here instead of numbers buried in CI logs: load each
directory, then ask :func:`metric_trajectory` how a metric moved across
runs.

Only stdlib + ``repro.exceptions`` is imported, keeping the provenance
package free of store/campaign dependencies.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Sequence, Tuple, Union

from repro.exceptions import ConfigurationError

__all__ = ["BenchRecord", "load_bench_dir", "bench_history", "metric_trajectory"]

_BENCH_PREFIX = "BENCH_"


@dataclass(frozen=True)
class BenchRecord:
    """One benchmark result: which run, which experiment, what numbers."""

    run: str
    experiment: str
    metrics: Tuple[Tuple[str, Any], ...]

    def metric(self, name: str, default: Any = None) -> Any:
        for key, value in self.metrics:
            if key == name:
                return value
        return default

    def as_dict(self) -> Dict[str, Any]:
        return {"run": self.run, "experiment": self.experiment, **dict(self.metrics)}


def _load_bench_file(path: Path, run: str) -> BenchRecord:
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise ConfigurationError(f"malformed benchmark artifact {path}: {exc}") from exc
    if not isinstance(payload, dict):
        raise ConfigurationError(
            f"malformed benchmark artifact {path}: expected an object, "
            f"got {type(payload).__name__}"
        )
    experiment = str(payload.get("name") or path.stem[len(_BENCH_PREFIX):])
    metrics = tuple(
        (key, value) for key, value in sorted(payload.items()) if key != "name"
    )
    return BenchRecord(run=run, experiment=experiment, metrics=metrics)


def load_bench_dir(directory: Union[str, Path], *, run: str = "") -> Tuple[BenchRecord, ...]:
    """All ``BENCH_*.json`` records of one artifact directory.

    ``run`` labels the records (defaults to the directory name).  A
    directory with no benchmark files loads empty; a missing directory
    raises.
    """
    directory = Path(directory)
    if not directory.is_dir():
        raise ConfigurationError(f"no benchmark artifact directory at {directory}")
    run = run or directory.name
    return tuple(
        _load_bench_file(path, run)
        for path in sorted(directory.glob(f"{_BENCH_PREFIX}*.json"))
    )


def bench_history(directories: Sequence[Union[str, Path]]) -> Tuple[BenchRecord, ...]:
    """Records of several artifact directories, in the given run order."""
    records: List[BenchRecord] = []
    for directory in directories:
        records.extend(load_bench_dir(directory))
    return tuple(records)


def metric_trajectory(
    records: Sequence[BenchRecord],
    experiment: str,
    metric: str,
) -> Tuple[Tuple[str, Any], ...]:
    """``(run, value)`` pairs of one metric across runs, record order.

    Runs where the experiment was not benchmarked, or the metric not
    emitted, are left out — a trajectory over heterogeneous history
    never fabricates points.
    """
    trajectory: List[Tuple[str, Any]] = []
    for record in records:
        if record.experiment != experiment:
            continue
        value = record.metric(metric, default=_MISSING)
        if value is not _MISSING:
            trajectory.append((record.run, value))
    return tuple(trajectory)


_MISSING = object()
