"""The append-only campaign journal: what ran, why, and at what cost.

A store remembers *outcomes*; the journal remembers *decisions*.  Every
campaign run through :class:`~repro.store.caching.CachingRunner` appends
one ``campaign-start`` record, one ``scenario`` record per input
position (``ran`` / ``cached`` / ``skipped``, each with its
:class:`~repro.provenance.usage.ResourceUsage`), optional ``early-stop``
records naming the certified points, and a ``campaign-finish`` record —
making a sweep auditable after the fact: exactly what executed, what was
served from cache, what an adaptive budget dropped, and what it all
cost.

The format mirrors the JSONL result store on purpose: one
schema-versioned JSON object per line, appended with a ``write + flush``
so a SIGKILL loses at most the line being written.  Reading is
torn-tail-safe (:func:`read_journal` drops a torn final line, reports
mid-file corruption loudly, skips rows of other journal versions) and
the writer is **thread-safe** — under the process campaign backend the
``ran`` records arrive from the parent's event-drain thread while the
caller's thread appends lifecycle records.

:func:`replay_ledger` folds a journal (possibly spanning several
campaigns, including killed ones) back into a :class:`JournalReplay`:
per-campaign ledgers whose ``ran + cached + skipped`` counts must sum to
the campaign size, and a merged per-fingerprint decision map — a killed
and resumed campaign replays to the *same* merged ledger as an
uninterrupted one.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.exceptions import ConfigurationError
from repro.provenance.usage import ResourceUsage

__all__ = [
    "JOURNAL_SCHEMA_VERSION",
    "SCENARIO_DECISIONS",
    "CampaignJournal",
    "CampaignLedger",
    "JournalReplay",
    "read_journal",
    "record_elapsed",
    "replay_ledger",
]

#: Bump on any change to the journal record schema; readers skip rows of
#: other versions (they can still be inspected as raw JSON).
JOURNAL_SCHEMA_VERSION = 1

#: How a scenario position was settled.  ``ran`` — executed this
#: campaign; ``cached`` — served from the store (or replayed from a
#: duplicate position's execution); ``skipped`` — dropped by an
#: early-stop policy.
SCENARIO_DECISIONS = ("ran", "cached", "skipped")

_RECORD_TYPES = ("campaign-start", "scenario", "early-stop", "campaign-finish")


def _jsonable(value: Any) -> Any:
    """Best-effort JSON-safe projection for point keys and metadata."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (tuple, list)):
        return [_jsonable(item) for item in value]
    return repr(value)


class CampaignJournal:
    """Thread-safe append-only writer for one journal file.

    Opening the journal validates (and heals, exactly like the JSONL
    result store) the existing file, so appends always start on a clean
    line; the file then only ever grows.  ``close()`` is idempotent and
    the journal is a context manager.
    """

    def __init__(self, path: Union[str, Path]):
        self._path = Path(path)
        self._path.parent.mkdir(parents=True, exist_ok=True)
        if self._path.exists():
            _scan(self._path.read_bytes(), self._path, heal=True)
        self._lock = threading.Lock()
        self._file = self._path.open("a", encoding="utf-8")
        # Monotonic origin for per-record ``elapsed`` stamps.  ``ts`` is
        # wall-clock (time.time) — human-readable, joinable across hosts,
        # but steppable by NTP; ``elapsed`` (perf_counter seconds since
        # this journal handle opened) is what duration arithmetic between
        # records of one session should use.
        self._opened_perf = time.perf_counter()

    @property
    def path(self) -> Path:
        return self._path

    # -- the record stream -------------------------------------------------

    def campaign_started(
        self,
        campaign: str,
        total: int,
        *,
        backend: str = "serial",
        workers: Optional[int] = None,
    ) -> None:
        self._append({
            "type": "campaign-start",
            "campaign": campaign,
            "total": int(total),
            "backend": backend,
            "workers": workers,
            "pid": os.getpid(),
        })

    def scenario(
        self,
        campaign: str,
        fingerprint: str,
        decision: str,
        *,
        verdict: str = "",
        usage: Optional[ResourceUsage] = None,
        label: str = "",
        worker_pid: Optional[int] = None,
    ) -> None:
        if decision not in SCENARIO_DECISIONS:
            raise ConfigurationError(
                f"unknown scenario decision {decision!r}; one of {SCENARIO_DECISIONS}"
            )
        self._append({
            "type": "scenario",
            "campaign": campaign,
            "fp": str(fingerprint),
            "decision": decision,
            "verdict": verdict,
            "label": label,
            "worker_pid": worker_pid,
            "usage": (usage or ResourceUsage()).to_dict(),
        })

    def scenario_event(self, campaign: str, event: Any) -> None:
        """Journal one :class:`~repro.campaign.runner.ScenarioEvent`.

        The decision is read off the event: ``cached`` events are store
        hits (or duplicate-position replays), everything else ran.
        """
        self.scenario(
            campaign,
            event.fingerprint,
            "cached" if event.cached else "ran",
            verdict=event.verdict,
            usage=event.usage,
            label=event.label,
            worker_pid=event.worker_pid,
        )

    def early_stop(self, campaign: str, point: Any, verdict: str) -> None:
        self._append({
            "type": "early-stop",
            "campaign": campaign,
            "point": _jsonable(point),
            "verdict": verdict,
        })

    def campaign_finished(self, campaign: str, stats: Optional[Dict[str, Any]] = None) -> None:
        self._append({
            "type": "campaign-finish",
            "campaign": campaign,
            "stats": dict(stats) if stats else {},
        })

    # -- plumbing ----------------------------------------------------------

    def _append(self, record: Dict[str, Any]) -> None:
        record = {
            "v": JOURNAL_SCHEMA_VERSION,
            "ts": time.time(),
            "elapsed": round(time.perf_counter() - self._opened_perf, 6),
            **record,
        }
        line = json.dumps(record, sort_keys=True) + "\n"
        with self._lock:
            # One write + flush per record, under the lock: lines never
            # interleave even when the drain thread and the caller's
            # thread journal concurrently, and a kill tears at most the
            # final line (which read_journal drops).
            self._file.write(line)
            self._file.flush()

    def close(self) -> None:
        with self._lock:
            if not self._file.closed:
                self._file.close()

    def __enter__(self) -> "CampaignJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# -- reading -----------------------------------------------------------------


def _scan(data: bytes, path: Path, *, heal: bool) -> List[Dict[str, Any]]:
    """Parse journal bytes: tolerate a torn tail, report real damage.

    Classification matches the JSONL result store: an unreadable *final*
    line without further data behind it is a kill artefact and is
    dropped (and truncated away when ``heal`` is set); an unreadable
    line *followed by more data* is genuine corruption and raises.
    """
    records: List[Dict[str, Any]] = []
    good_until = 0
    for line_number, raw_line in enumerate(data.split(b"\n"), start=1):
        stripped = raw_line.strip()
        if stripped:
            try:
                record = json.loads(stripped.decode("utf-8"))
                if not isinstance(record, dict) or "type" not in record:
                    raise ConfigurationError(f"not a journal record: {record!r}")
                if record.get("v") == JOURNAL_SCHEMA_VERSION:
                    records.append(record)
            except (ValueError, KeyError, TypeError, ConfigurationError) as exc:
                if good_until + len(raw_line) + 1 <= len(data):
                    raise ConfigurationError(
                        f"corrupt campaign journal {path}: unreadable record "
                        f"on line {line_number} ({exc})"
                    ) from exc
                break  # torn final line: a kill artefact, drop it
        good_until += len(raw_line) + 1
    good_until = min(good_until, len(data))
    if heal and (good_until < len(data) or (data and not data.endswith(b"\n"))):
        clean = data[:good_until]
        if clean and not clean.endswith(b"\n"):
            clean += b"\n"
        path.write_bytes(clean)
    return records


def read_journal(path: Union[str, Path]) -> Tuple[Dict[str, Any], ...]:
    """All current-version records of a journal file, in append order."""
    path = Path(path)
    if not path.exists():
        raise ConfigurationError(f"no campaign journal at {path}")
    return tuple(_scan(path.read_bytes(), path, heal=False))


def record_elapsed(record: Dict[str, Any]) -> Optional[float]:
    """The record's monotonic ``elapsed`` stamp, or ``None``.

    Journals written before the ``elapsed`` field existed (or records
    with a mangled value) simply have no monotonic stamp — readers fall
    back to the wall-clock ``ts`` for those, accepting its clock-step
    hazard.  Use this instead of indexing the field so old journals keep
    replaying.
    """
    value = record.get("elapsed")
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return float(value)
    return None


# -- replay ------------------------------------------------------------------


@dataclass
class CampaignLedger:
    """One campaign's per-scenario accounting, replayed from the journal."""

    campaign: str
    total: int
    backend: str = "serial"
    workers: Optional[int] = None
    ran: int = 0
    cached: int = 0
    skipped: int = 0
    usage: ResourceUsage = field(default_factory=ResourceUsage)
    early_stops: Tuple[Tuple[Any, str], ...] = ()
    finished: bool = False
    stats: Dict[str, Any] = field(default_factory=dict)

    @property
    def recorded(self) -> int:
        """Scenario records seen; equals ``total`` for finished campaigns."""
        return self.ran + self.cached + self.skipped

    def as_dict(self) -> Dict[str, Any]:
        return {
            "campaign": self.campaign,
            "total": self.total,
            "backend": self.backend,
            "workers": self.workers,
            "ran": self.ran,
            "cached": self.cached,
            "skipped": self.skipped,
            "finished": self.finished,
            "seconds": round(self.usage.seconds, 6),
            "steps": self.usage.steps,
            "messages_sent": self.usage.messages_sent,
            "messages_delivered": self.usage.messages_delivered,
        }


#: Merge precedence for the cross-campaign decision map: having run
#: anywhere outweighs cache hits, which outweigh skips.
_DECISION_RANK = {"skipped": 0, "cached": 1, "ran": 2}


@dataclass
class JournalReplay:
    """A journal folded back into ledgers and a merged decision map."""

    campaigns: Dict[str, CampaignLedger]
    decisions: Dict[str, str]
    ran_counts: Dict[str, int]
    scenario_records: Tuple[Dict[str, Any], ...]

    @property
    def ran_fingerprints(self) -> frozenset:
        return frozenset(fp for fp, d in self.decisions.items() if d == "ran")

    @property
    def cached_fingerprints(self) -> frozenset:
        return frozenset(fp for fp, d in self.decisions.items() if d == "cached")

    def total_usage(self, *, include_cached: bool = False) -> ResourceUsage:
        """Summed cost of everything that ran (optionally cache hits too)."""
        total = ResourceUsage()
        for record in self.scenario_records:
            if record["decision"] == "ran" or (
                include_cached and record["decision"] == "cached"
            ):
                total = total + ResourceUsage.from_dict(record["usage"])
        return total


def replay_ledger(records) -> JournalReplay:
    """Fold journal records into per-campaign ledgers, validating as it goes.

    Raises :class:`~repro.exceptions.ConfigurationError` on structural
    damage: an unknown record type, a scenario record for a campaign
    that never started, an unknown decision, or a *finished* campaign
    whose ``ran + cached + skipped`` does not sum to its size.  Killed
    campaigns (no ``campaign-finish`` record) are exempt from the sum
    check — their partial ledger is exactly what the resume replays.
    """
    campaigns: Dict[str, CampaignLedger] = {}
    decisions: Dict[str, str] = {}
    ran_counts: Dict[str, int] = {}
    scenario_records: List[Dict[str, Any]] = []
    for record in records:
        kind = record.get("type")
        campaign = record.get("campaign")
        if kind not in _RECORD_TYPES:
            raise ConfigurationError(f"unknown journal record type {kind!r}")
        if not isinstance(campaign, str) or not campaign:
            raise ConfigurationError(f"journal record without a campaign id: {record!r}")
        if kind == "campaign-start":
            campaigns[campaign] = CampaignLedger(
                campaign=campaign,
                total=int(record["total"]),
                backend=record.get("backend", "serial"),
                workers=record.get("workers"),
            )
            continue
        ledger = campaigns.get(campaign)
        if ledger is None:
            raise ConfigurationError(
                f"journal records a {kind!r} for campaign {campaign!r} "
                "before its campaign-start"
            )
        if kind == "scenario":
            decision = record.get("decision")
            fingerprint = record.get("fp")
            if decision not in SCENARIO_DECISIONS:
                raise ConfigurationError(
                    f"unknown scenario decision {decision!r} in journal"
                )
            if not isinstance(fingerprint, str) or not fingerprint:
                raise ConfigurationError(
                    f"scenario record without a fingerprint: {record!r}"
                )
            usage = ResourceUsage.from_dict(record.get("usage", {}))
            setattr(ledger, decision, getattr(ledger, decision) + 1)
            ledger.usage = ledger.usage + usage
            previous = decisions.get(fingerprint)
            if previous is None or _DECISION_RANK[decision] > _DECISION_RANK[previous]:
                decisions[fingerprint] = decision
            if decision == "ran":
                ran_counts[fingerprint] = ran_counts.get(fingerprint, 0) + 1
            scenario_records.append(record)
        elif kind == "early-stop":
            ledger.early_stops = ledger.early_stops + (
                (record.get("point"), record.get("verdict", "")),
            )
        else:  # campaign-finish
            ledger.finished = True
            ledger.stats = dict(record.get("stats") or {})
            if ledger.recorded != ledger.total:
                raise ConfigurationError(
                    f"campaign {campaign!r} finished with "
                    f"{ledger.recorded} scenario records for {ledger.total} "
                    "scenarios; the journal is incomplete"
                )
    return JournalReplay(
        campaigns=campaigns,
        decisions=decisions,
        ran_counts=ran_counts,
        scenario_records=tuple(scenario_records),
    )
