"""``python -m repro.provenance.report`` — validate and summarise a journal.

CI runs this against the journal the benchmark smoke job produced; a
malformed journal (mid-file corruption, records for campaigns that never
started, a finished campaign whose ledger does not sum to its size)
exits non-zero, keeping the format honest across Python versions.

Optionally joins a result store (``--store``) for by-dimension cost
aggregation, and benchmark artifact directories (``--bench``) for the
perf trajectory.

This module is a CLI endpoint, deliberately *not* exported from
``repro.provenance``: it imports ``repro.store`` lazily inside
:func:`main`, which would cycle at module level (store → caching →
campaign runner → provenance usage).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.exceptions import ConfigurationError
from repro.provenance.bench_history import bench_history, load_bench_dir
from repro.provenance.journal import read_journal, replay_ledger
from repro.provenance.queries import (
    aggregate_cost,
    aggregate_outcomes,
    disagreement_report,
)

__all__ = ["main"]


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.provenance.report",
        description="Validate a campaign journal and report its cost ledger.",
    )
    parser.add_argument("journal", help="path to a campaign journal (JSONL)")
    parser.add_argument(
        "--store",
        help="result store to join for outcome/cost aggregation "
        "(.jsonl / .sqlite path)",
    )
    parser.add_argument(
        "--by",
        default="kind,n,scheduler",
        help="comma-separated spec dimensions to aggregate by "
        "(default: kind,n,scheduler)",
    )
    parser.add_argument(
        "--bench",
        action="append",
        default=[],
        metavar="DIR",
        help="benchmark artifact directory holding BENCH_*.json "
        "(repeatable; listed in run order)",
    )
    return parser


def _format_table(rows: List[List[str]], header: List[str]) -> str:
    widths = [
        max(len(header[column]), *(len(row[column]) for row in rows))
        if rows
        else len(header[column])
        for column in range(len(header))
    ]
    def fmt(row: List[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(row, widths)).rstrip()
    return "\n".join([fmt(header)] + [fmt(row) for row in rows])


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _parser().parse_args(argv)
    out = print
    try:
        records = read_journal(args.journal)
        replay = replay_ledger(records)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    out(f"journal: {args.journal}")
    out(f"  records: {len(records)}  campaigns: {len(replay.campaigns)}")
    for ledger in replay.campaigns.values():
        state = "finished" if ledger.finished else "INCOMPLETE (killed?)"
        out(
            f"  campaign {ledger.campaign} [{ledger.backend}"
            + (f" x{ledger.workers}" if ledger.workers else "")
            + f"] {state}: {ledger.ran} ran, {ledger.cached} cached, "
            f"{ledger.skipped} skipped of {ledger.total} "
            f"({ledger.usage.seconds:.2f}s, {ledger.usage.steps} steps)"
        )
        for point, verdict in ledger.early_stops:
            out(f"    early-stop {point} -> {verdict}")
    total = replay.total_usage()
    out(
        f"  executed total: {len(replay.ran_fingerprints)} unique scenario(s), "
        f"{total.seconds:.2f}s wall, {total.steps} steps, "
        f"{total.messages_sent} sent / {total.messages_delivered} delivered"
    )

    if args.store:
        # Imported here, not at module level: repro.store pulls in the
        # caching/campaign layers that provenance must stay below.
        from repro.store import open_store

        by = tuple(dim.strip() for dim in args.by.split(",") if dim.strip())
        try:
            with open_store(args.store) as store:
                outcome_groups = aggregate_outcomes(store, by)
                cost_groups, unresolved = aggregate_cost(store, replay, by)
                drill_down = disagreement_report(store)
        except ConfigurationError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        out(f"\nstore: {args.store}  grouped by {', '.join(by)}")
        rows = []
        for key in sorted(outcome_groups, key=repr):
            outcome = outcome_groups[key]
            cost = cost_groups.get(key)
            rows.append([
                ":".join(str(part) for part in key),
                str(outcome.scenarios),
                str(outcome.ok),
                str(outcome.violation + outcome.error),
                str(outcome.usage.steps),
                f"{cost.usage.seconds:.2f}" if cost else "-",
            ])
        out(_format_table(
            rows, ["group", "stored", "ok", "non-ok", "steps", "ran-seconds"]
        ))
        if unresolved:
            out(f"  ({len(unresolved)} journaled fingerprint(s) not in this store)")
        out(drill_down)

    if args.bench:
        try:
            records_by_dir = [load_bench_dir(directory) for directory in args.bench]
            history = bench_history(args.bench)
        except ConfigurationError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        out(f"\nbench history: {len(history)} record(s) across {len(records_by_dir)} run(s)")
        for record in history:
            metrics = ", ".join(f"{key}={value}" for key, value in record.metrics)
            out(f"  [{record.run}] {record.experiment}: {metrics}")

    return 0


if __name__ == "__main__":
    sys.exit(main())
