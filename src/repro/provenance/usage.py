"""Per-scenario resource accounting.

A :class:`ResourceUsage` record answers "what did this scenario cost?"
in the two currencies a campaign spends: wall-clock time and simulated
work (steps taken, messages sent/delivered).  The work counters come
straight from the executor, which maintains them under **every**
:class:`~repro.simulation.recording.RecordingPolicy` — they are part of
the deterministic outcome of a scenario, bit-identical across recording
policies and campaign backends.  Wall time is measurement, not outcome:
like the timing metadata of a
:class:`~repro.campaign.runner.CampaignResult` it is **excluded from
equality**, so usage records can be asserted equal across backends and
replays while still carrying the cost ledger a journal aggregates.

This module deliberately imports nothing from the campaign or store
layers: usage records ride on worker-side scenario events and inside
journal rows, both of which sit below those packages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping

__all__ = ["ResourceUsage"]


@dataclass(frozen=True)
class ResourceUsage:
    """What one scenario (or a sum of scenarios) cost.

    Attributes
    ----------
    seconds:
        Wall-clock seconds spent executing (0 for cache hits).  Excluded
        from equality — machines differ, outcomes must not.
    steps:
        Executor steps taken (``Run.length``).
    messages_sent / messages_delivered:
        Message-volume counters of the execution.
    """

    seconds: float = field(default=0.0, compare=False)
    steps: int = 0
    messages_sent: int = 0
    messages_delivered: int = 0

    @classmethod
    def of_outcome(cls, outcome: Any, seconds: float = 0.0) -> "ResourceUsage":
        """The usage of one :class:`ScenarioOutcome` (duck-typed)."""
        return cls(
            seconds=seconds,
            steps=outcome.steps,
            messages_sent=outcome.messages_sent,
            messages_delivered=outcome.messages_delivered,
        )

    def __add__(self, other: "ResourceUsage") -> "ResourceUsage":
        if not isinstance(other, ResourceUsage):
            return NotImplemented
        return ResourceUsage(
            seconds=self.seconds + other.seconds,
            steps=self.steps + other.steps,
            messages_sent=self.messages_sent + other.messages_sent,
            messages_delivered=self.messages_delivered + other.messages_delivered,
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe encoding (inverse: :meth:`from_dict`)."""
        return {
            "seconds": self.seconds,
            "steps": self.steps,
            "messages_sent": self.messages_sent,
            "messages_delivered": self.messages_delivered,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ResourceUsage":
        return cls(
            seconds=float(data.get("seconds", 0.0)),
            steps=int(data.get("steps", 0)),
            messages_sent=int(data.get("messages_sent", 0)),
            messages_delivered=int(data.get("messages_delivered", 0)),
        )
