"""Demo: fault injection, supervised recovery, quarantine, compaction.

Runs the Theorem 8 border campaign under escalating chaos and checks
the fault-tolerance contract end to end:

1. **transient chaos, process backend** — a seeded
   :class:`~repro.faults.FaultPlan` SIGKILLs workers, injects task
   exceptions and delays; the supervised dispatch loop retries and
   re-queues until the result is **equal to the fault-free baseline**,
   and the journal's ledger stays exact;
2. **poison** — one spec fails on every attempt; the supervisor retries,
   bisects, then quarantines it into an ``"error"`` outcome (reported in
   the result, the journal stats and a quarantine-report artifact)
   instead of aborting the campaign — and the quarantined spec is *not*
   persisted, so a later run re-attempts it;
3. **store-write chaos** — a fifth of first writes fail; outcomes
   survive in memory and the failures are counted, never raised;
4. **compaction** — ``python -m repro.store.compact`` drops dead
   schema-version rows and superseded duplicates from the chaos store.

Run with::

    PYTHONPATH=src python examples/campaign_chaos.py

Set ``REPRO_CHAOS_JOURNAL`` and ``REPRO_QUARANTINE_REPORT`` to keep the
artifacts (CI uploads them next to the benchmark JSON).
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

from repro.campaign import CampaignRunner, theorem8_specs
from repro.faults import FaultPlan, FaultyStore, RetryPolicy
from repro.provenance import read_journal, replay_ledger
from repro.store import CachingRunner, MemoryResultStore, open_store
from repro.store.compact import compact_store

RETRY = RetryPolicy(
    max_attempts=3, backoff_seconds=0.02, task_timeout_seconds=10.0,
    death_grace_seconds=0.5, wake_seconds=0.05, teardown_grace_seconds=1.0,
)


def main() -> None:
    specs = theorem8_specs([4, 5], seeds=(1,), max_steps=6_000)
    baseline = CampaignRunner().run(specs)
    print(f"campaign: {len(specs)} scenarios, fault-free "
          f"{baseline.verdict_counts()}")

    with tempfile.TemporaryDirectory() as tmp:
        journal_path = Path(os.environ.get(
            "REPRO_CHAOS_JOURNAL", Path(tmp) / "chaos_journal.jsonl"))
        report_path = Path(os.environ.get(
            "REPRO_QUARANTINE_REPORT", Path(tmp) / "quarantine_report.json"))
        store_path = Path(tmp) / "chaos.jsonl"

        # 1. Transient chaos on the process backend: crashed workers and
        #    injected exceptions perturb the schedule, never the result.
        plan = FaultPlan(seed=42, crash_rate=0.1, raise_rate=0.15,
                         delay_rate=0.1, delay_seconds=0.002)
        store = open_store(store_path)
        runner = CachingRunner(
            store,
            CampaignRunner(backend="process", workers=2, chunk_size=4,
                           faults=plan, retry=RETRY),
            journal=journal_path,
        )
        result = runner.run(specs)
        assert result == baseline, "chaos must never change outcomes"
        stats = result.fault_stats
        print(f"chaos:     equal to baseline under "
              f"{stats.worker_deaths} worker death(s), "
              f"{stats.task_retries} retr{'y' if stats.task_retries == 1 else 'ies'}, "
              f"{stats.task_timeouts} timeout(s)")

        ledger = replay_ledger(read_journal(journal_path)).campaigns[
            runner.last_campaign_id]
        assert ledger.finished and ledger.recorded == ledger.total == len(specs)
        print(f"journal:   ledger exact ({ledger.total} scenarios, "
              f"faults in stats: {sorted(ledger.stats.get('faults', {}))})")

        # 2. Poison one spec: retry -> bisect -> quarantine, campaign
        #    completes, and the quarantine is reported everywhere.
        poisoned = specs[7]
        poison_plan = FaultPlan(poison_labels=(poisoned.label(),))
        poisoned_result = CampaignRunner(
            backend="chunked", chunk_size=8,
            faults=poison_plan, retry=RETRY,
        ).run(specs)
        quarantined = [o for o in poisoned_result.outcomes
                       if o.verdict == "error"
                       and o.error.startswith("QuarantineError")]
        assert [o.spec.label() for o in quarantined] == [poisoned.label()]
        report = {
            "campaign_scenarios": len(specs),
            "fault_stats": poisoned_result.fault_stats.as_dict(),
            "quarantined": [
                {"label": o.spec.label(), "error": o.error}
                for o in quarantined
            ],
        }
        report_path.parent.mkdir(parents=True, exist_ok=True)
        report_path.write_text(json.dumps(report, indent=2) + "\n")
        print(f"poison:    {poisoned.label()} quarantined after "
              f"{poisoned_result.fault_stats.bisections} bisection(s); "
              f"report at {report_path}")

        # 3. Store-write chaos: failed writes degrade to counters.
        inner = MemoryResultStore()
        faulty = FaultyStore(inner, FaultPlan(store_failure_rate=0.2))
        tolerant = CachingRunner(faulty, CampaignRunner()).run(specs)
        assert tolerant == baseline
        assert 0 < faulty.failed_writes < len(specs)
        assert len(inner) == len(specs) - faulty.failed_writes
        print(f"store:     {faulty.failed_writes} injected write failures, "
              f"zero lost outcomes")

        # 4. Compact the chaos store (plus a planted dead-schema row).
        store.close()
        with store_path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(
                {"fp": "0" * 64, "v": 1, "outcome": {}}) + "\n")
        compacted = compact_store(store_path)
        assert compacted.rows_dropped_schema == 1
        assert compacted.rows_kept == len(specs)
        print(f"compact:   {compacted.summary()}")

    print("\nall fault-tolerance guarantees hold")


if __name__ == "__main__":
    main()
