#!/usr/bin/env python3
"""Theorem 1 as a vetting tool for candidate algorithms.

The remarks after Theorem 1 suggest using the theorem to screen "seemingly
promising" new algorithms: if runs satisfying condition (dec-D) can be
constructed, the algorithm is very likely flawed.  This script vets two
candidates that claim to solve 3-set agreement with ``(Sigma_3, Omega_3)``
in a 6-process system:

* ``FlawedQuorumKSet`` — a plausible generalisation of the correct
  ``Sigma_{n-1}`` protocol whose relaxed quorum rule admits the
  partitioning runs; the vetting finds condition (A) satisfiable, and the
  Theorem 10 schedule then exhibits an actual 4-value run.
* ``SigmaOmegaConsensus`` — the (over-qualified, but correct) consensus
  protocol; the vetting fails to construct condition (A), consistent with
  the protocol never deciding without quorum communication.

Run with::

    python examples/vet_candidate_algorithm.py
"""

from __future__ import annotations

from repro import FlawedQuorumKSet, SigmaOmegaConsensus, Theorem10Scenario
from repro.simulation.trace import format_decisions


def vet(scenario: Theorem10Scenario, algorithm, expect_flawed: bool) -> None:
    print(f"--- vetting {algorithm.name} ---")
    application = scenario.application(algorithm)
    report_a = application.check_condition_a()
    print(f"condition (A) constructible: {report_a.satisfied}")
    print(f"  {report_a.details}")
    if report_a.satisfied:
        witness = application.apply()
        print(f"all Theorem 1 conditions hold: {witness.holds}")
        print(f"  {witness.conclusion}")
        run, property_report = scenario.violation_run(algorithm)
        print("adversarial run under the partitioning histories:")
        print(f"  decisions: {format_decisions(run)}")
        print(f"  distinct values: {len(run.distinct_decisions())} "
              f"(k = {scenario.k} allowed) -> agreement ok: {property_report.agreement_ok}")
    else:
        print("the candidate never decides without hearing from the other blocks;")
        print("Theorem 1 is not applicable to it in this scenario.")
    assert report_a.satisfied == expect_flawed
    print()


def main() -> None:
    n, k = 6, 3
    scenario = Theorem10Scenario(n=n, k=k, max_steps=4_000)
    print(f"=== Vetting candidates for {k}-set agreement with (Sigma_{k}, Omega_{k}), n={n} ===")
    print(f"partition used by the adversary: {scenario.partition.describe()}\n")
    vet(scenario, FlawedQuorumKSet(n, k), expect_flawed=True)
    vet(scenario, SigmaOmegaConsensus(n), expect_flawed=False)


if __name__ == "__main__":
    main()
