"""Demo: the unified telemetry layer — spans, metrics, trace export.

Runs the Theorem 8 border campaign three ways under one
:class:`~repro.telemetry.TelemetrySession`:

1. **traced, process backend** — worker processes record hierarchical
   spans (campaign → scenario → execute → ``phase:*`` → decision) that
   ship back on the scenario events, correlated by the journal's
   campaign id; the session exports a Chrome trace-event file (load it
   at ``ui.perfetto.dev``) and a metrics JSONL dump on finish;
2. **serial, fresh session** — the deterministic metric fields (counts,
   integer sums, histogram bins) are *equal* to the process run's:
   telemetry, like :class:`~repro.provenance.ResourceUsage`, separates
   what the machine did from how long it took;
3. **cached replay** — a warm store answers every scenario; the session
   reports a 100% cache hit rate and no executor spans.

It then summarises the trace through the bundled CLI — the same thing
``python -m repro.telemetry.report trace.jsonl --metrics ... --journal
...`` prints.  Run with::

    PYTHONPATH=src python examples/campaign_telemetry.py

Set ``REPRO_TRACE``, ``REPRO_METRICS`` and ``REPRO_TELEMETRY_JOURNAL``
to keep the artifacts (CI uploads them next to the benchmark JSON).
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path

from repro.campaign import CampaignRunner, theorem8_specs
from repro.store import CachingRunner, MemoryResultStore
from repro.telemetry import TelemetryConfig, TelemetrySession, read_trace
from repro.telemetry.report import main as report_main


def main() -> None:
    n_values = [4, 5]
    specs = theorem8_specs(n_values, seeds=(1,), max_steps=6_000)
    print(f"campaign: {len(specs)} scenarios over n={n_values}")

    with tempfile.TemporaryDirectory() as tmp:
        trace_path = Path(os.environ.get("REPRO_TRACE", Path(tmp) / "trace.jsonl"))
        metrics_path = Path(os.environ.get("REPRO_METRICS", Path(tmp) / "metrics.jsonl"))
        journal_path = Path(os.environ.get(
            "REPRO_TELEMETRY_JOURNAL", Path(tmp) / "journal.jsonl"))

        # 1. Traced process-backend run: spans cross the process boundary
        #    on the scenario events, the journal shares the correlation id.
        session = TelemetrySession(TelemetryConfig(
            capture_phases=True,
            sample_threshold=0,          # small campaign: trace everything
            trace_path=trace_path,
            metrics_path=metrics_path,
        ))
        store = MemoryResultStore()
        with CachingRunner(
            store,
            CampaignRunner(backend="process", workers=2, chunk_size=8),
            journal=journal_path,
            telemetry=session,
        ) as runner:
            result = runner.run(specs)
            campaign = runner.last_campaign_id

            # 3 (early, while the store is still open). Cached replay:
            #    every scenario answered from the store — 100% hit rate,
            #    no executor spans, nothing executed.
            warm = TelemetrySession(TelemetryConfig())
            CachingRunner(store, telemetry=warm).run(specs)
            assert warm.cache_hit_rate() == 1.0
            assert not [s for s in warm.spans() if s.name == "execute"]
        summary = session.finish()
        print(f"traced:    {result.verdict_counts()} "
              f"({summary['spans']} spans, campaign {campaign})")
        assert summary["trace_path"] == str(trace_path)

        spans = session.spans()
        names = {s.name for s in spans}
        assert {"campaign", "scenario", "execute", "decision"} <= names
        assert any(n.startswith("phase:") for n in names)
        worker_pids = {s.pid for s in spans if s.name == "scenario"}
        print(f"  span kinds: {sorted(names)[:4]}… from "
              f"{len(worker_pids)} worker pid(s)")
        assert {s.trace_id for s in spans} == {campaign}

        # 2. Same campaign, serial backend, fresh session: deterministic
        #    metric fields are bit-identical — wall-clock is excluded.
        serial = TelemetrySession(TelemetryConfig())
        CachingRunner(MemoryResultStore(), telemetry=serial).run(specs)
        assert serial.deterministic_snapshot() == session.deterministic_snapshot()
        det = serial.deterministic_snapshot()
        print(f"serial:    deterministic snapshot equal to process run "
              f"({det['steps_total']['value']} steps, "
              f"{det['messages_sent_total']['value']} msgs)")

        # 3. Reported here; the replay itself ran above, before the
        #    in-memory store was closed.
        print(f"cached:    hit rate {warm.cache_hit_rate():.0%}, "
              f"no executor spans")

        # 4. The exported trace validates and summarises via the CLI.
        events = read_trace(trace_path)
        assert {e["args"]["trace_id"] for e in events} == {campaign}
        print(f"\ntrace file: {len(events)} events at {trace_path}")
        rc = report_main([
            str(trace_path),
            "--metrics", str(metrics_path),
            "--journal", str(journal_path),
            "--top", "3",
        ])
        assert rc == 0

    print("\nall telemetry guarantees hold")


if __name__ == "__main__":
    main()
