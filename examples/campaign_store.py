"""Demo: persistent campaigns — caching, resume, budgets, provenance.

Runs the Theorem 8 border campaign against a persistent result store
three times:

1. **cold** — every scenario executes, each outcome is persisted the
   moment it exists (kill the run at any point: nothing completed is
   lost);
2. **warm** — the identical campaign replays entirely from cache and
   produces a ``CampaignResult`` *equal* to the cold one;
3. **interrupted + resumed** — a half-populated store stands in for a
   killed run; the resumed campaign recomputes only the missing half and
   still equals the uninterrupted result.

It then shows an adaptive budget (``EarlyStopPolicy`` stops sampling a
point once a violation is certified), the campaign **journal** every run
appended to (per-scenario ran/cached/skipped decisions with their
``ResourceUsage``), the query layer's cost aggregation, and the JSON
round trip of a full campaign result.  Run with::

    PYTHONPATH=src python examples/campaign_store.py

Set ``REPRO_JOURNAL=/path/to/journal.jsonl`` to keep the journal (CI
uploads it as an artifact next to the benchmark JSON).
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path

from repro.campaign import CampaignResult, CampaignRunner, theorem8_specs
from repro.provenance import aggregate_cost, read_journal, replay_ledger
from repro.store import (
    CachingRunner,
    EarlyStopPolicy,
    LogProgressReporter,
    ScenarioFingerprint,
    open_store,
)


def main() -> None:
    n_values = [4, 5]
    specs = theorem8_specs(n_values, seeds=(1,), max_steps=6_000)
    print(f"campaign: {len(specs)} scenarios over n={n_values}")
    print(f"  example fingerprint: {ScenarioFingerprint.of(specs[0]).short}… "
          f"<- {specs[0].label()}")

    with tempfile.TemporaryDirectory() as tmp:
        jsonl_path = Path(tmp) / "theorem8.jsonl"
        sqlite_path = Path(tmp) / "theorem8.sqlite"
        journal_path = Path(os.environ.get("REPRO_JOURNAL", Path(tmp) / "journal.jsonl"))

        # 1. Cold run: outcomes are persisted incrementally, with live
        #    pool-wide progress from worker-side events, and every
        #    decision journaled.
        with CachingRunner(
            open_store(jsonl_path),
            CampaignRunner(backend="process", workers=2),
            progress=LogProgressReporter(every=25),
            journal=journal_path,
        ) as runner:
            cold = runner.run(specs)
            print(f"cold run:  {runner.last_stats.as_dict()}")
            assert runner.last_stats.executed == len(specs)

        # 2. Warm run (fresh store handle, as after a restart): pure
        #    cache replay, equal result, journaled as all-cached.
        with CachingRunner(open_store(jsonl_path), journal=journal_path) as runner:
            warm = runner.run(specs)
            print(f"warm run:  {runner.last_stats.as_dict()}")
            assert runner.last_stats.executed == 0
            assert warm == cold, "cache replay must equal the cold campaign"

        # 3. Interrupted + resumed, on the SQLite backend: half the
        #    campaign is already stored (standing in for a killed run) —
        #    the resumed campaign computes only the other half.
        with CachingRunner(open_store(sqlite_path), journal=journal_path) as half:
            half.run(specs[: len(specs) // 2])
        with CachingRunner(
            open_store(sqlite_path),
            CampaignRunner(backend="process", workers=2),
            journal=journal_path,
        ) as runner:
            resumed = runner.run(specs)
            print(f"resumed:   {runner.last_stats.as_dict()}")
            assert runner.last_stats.cached == len(specs) // 2
            assert resumed == cold, "resumed campaign must equal an uninterrupted one"

        # 4. Adaptive budget: certify each point's violation once, skip
        #    the rest of that point's samples.
        policy = EarlyStopPolicy(stop_on=("violation", "ok"))
        with CachingRunner(
            open_store(":memory:"), policy=policy, journal=journal_path
        ) as runner:
            adaptive = runner.run(specs)
            print(f"adaptive:  {runner.last_stats.as_dict()} "
                  f"({len(policy.certified_points())} points certified)")
            assert runner.last_stats.skipped == policy.skipped_count
            assert len(adaptive.outcomes) == len(specs) - policy.skipped_count

        # 5. The journal is the audit trail of everything above: every
        #    campaign finished, every per-scenario ledger sums exactly.
        replay = replay_ledger(read_journal(journal_path))
        print(f"journal:   {len(replay.campaigns)} campaigns at {journal_path}")
        for ledger in replay.campaigns.values():
            assert ledger.finished
            assert ledger.ran + ledger.cached + ledger.skipped == ledger.total
            print(f"  {ledger.campaign}: {ledger.ran} ran, {ledger.cached} cached, "
                  f"{ledger.skipped} skipped / {ledger.total} "
                  f"({ledger.usage.seconds:.2f}s, {ledger.usage.steps} steps)")
        total = replay.total_usage()
        print(f"  executed cost: {total.seconds:.2f}s wall, {total.steps} steps, "
              f"{total.messages_sent} msgs sent")

        # 6. Cost by grid region: journal usage joined to stored specs.
        with open_store(sqlite_path) as store:
            cost, unresolved = aggregate_cost(store, replay, ("kind", "n"))
        for key in sorted(cost, key=repr):
            group = cost[key]
            print(f"  cost {key}: {group.scenarios} ran, "
                  f"{group.usage.seconds:.3f}s, {group.usage.steps} steps")

    # 7. A campaign result is archivable JSON.
    restored = CampaignResult.from_json(cold.to_json())
    assert restored == cold
    print("json round trip: restored == cold campaign")
    print("\nall persistence and provenance guarantees hold")


if __name__ == "__main__":
    main()
