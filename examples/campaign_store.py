"""Demo: persistent campaigns — caching, resume, budgets, live progress.

Runs the Theorem 8 border campaign against a persistent result store
three times:

1. **cold** — every scenario executes, each outcome is persisted the
   moment it exists (kill the run at any point: nothing completed is
   lost);
2. **warm** — the identical campaign replays entirely from cache and
   produces a ``CampaignResult`` *equal* to the cold one;
3. **interrupted + resumed** — a half-populated store stands in for a
   killed run; the resumed campaign recomputes only the missing half and
   still equals the uninterrupted result.

It then shows an adaptive budget (``EarlyStopPolicy`` stops sampling a
point once a violation is certified) and the JSON round trip of a full
campaign result.  Run with::

    PYTHONPATH=src python examples/campaign_store.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.campaign import CampaignResult, CampaignRunner, theorem8_specs
from repro.store import (
    CachingRunner,
    EarlyStopPolicy,
    LogProgressReporter,
    ScenarioFingerprint,
    open_store,
)


def main() -> None:
    n_values = [4, 5]
    specs = theorem8_specs(n_values, seeds=(1,), max_steps=6_000)
    print(f"campaign: {len(specs)} scenarios over n={n_values}")
    print(f"  example fingerprint: {ScenarioFingerprint.of(specs[0]).short}… "
          f"<- {specs[0].label()}")

    with tempfile.TemporaryDirectory() as tmp:
        jsonl_path = Path(tmp) / "theorem8.jsonl"
        sqlite_path = Path(tmp) / "theorem8.sqlite"

        # 1. Cold run: outcomes are persisted incrementally, with live
        #    pool-wide progress from worker-side events.
        with open_store(jsonl_path) as store:
            runner = CachingRunner(
                store,
                CampaignRunner(backend="process", workers=2),
                progress=LogProgressReporter(every=25),
            )
            cold = runner.run(specs)
            print(f"cold run:  {runner.last_stats.as_dict()}")
            assert runner.last_stats.executed == len(specs)

        # 2. Warm run (fresh store handle, as after a restart): pure
        #    cache replay, equal result.
        with open_store(jsonl_path) as store:
            runner = CachingRunner(store)
            warm = runner.run(specs)
            print(f"warm run:  {runner.last_stats.as_dict()}")
            assert runner.last_stats.executed == 0
            assert warm == cold, "cache replay must equal the cold campaign"

        # 3. Interrupted + resumed, on the SQLite backend: half the
        #    campaign is already stored (standing in for a killed run) —
        #    the resumed campaign computes only the other half.
        with open_store(sqlite_path) as store:
            CachingRunner(store).run(specs[: len(specs) // 2])
            runner = CachingRunner(store, CampaignRunner(backend="process", workers=2))
            resumed = runner.run(specs)
            print(f"resumed:   {runner.last_stats.as_dict()}")
            assert runner.last_stats.cached == len(specs) // 2
            assert resumed == cold, "resumed campaign must equal an uninterrupted one"

        # 4. Adaptive budget: certify each point's violation once, skip
        #    the rest of that point's samples.
        policy = EarlyStopPolicy(stop_on=("violation", "ok"))
        runner = CachingRunner(open_store(":memory:"), policy=policy)
        adaptive = runner.run(specs)
        print(f"adaptive:  {runner.last_stats.as_dict()} "
              f"({len(policy.certified_points())} points certified)")
        assert runner.last_stats.skipped == policy.skipped_count
        assert len(adaptive.outcomes) == len(specs) - policy.skipped_count

    # 5. A campaign result is archivable JSON.
    restored = CampaignResult.from_json(cold.to_json())
    assert restored == cold
    print("json round trip: restored == cold campaign")
    print("\nall persistence guarantees hold")


if __name__ == "__main__":
    main()
