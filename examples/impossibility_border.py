#!/usr/bin/env python3
"""The Theorem 8 solvability border: paper prediction vs. simulation.

For every parameter point ``(n, f, k)`` with ``n`` in a small range, the
script prints the closed-form Theorem 8 verdict (solvable iff
``k*n > (k+1)*f``) next to what actually happens when the Section VI
protocol is executed:

* on the solvable side it is run under fair and random schedules with
  worst-case initial-crash sets — all properties must hold;
* on the impossible side the Section VI partitioning construction is run —
  ``k + 1`` groups of size ``n - f`` that never hear from each other — and
  must produce more than ``k`` distinct decision values.

Run with::

    python examples/impossibility_border.py [n ...]
"""

from __future__ import annotations

import sys

from repro.analysis.border_sweep import sweep_theorem8
from repro.analysis.reporting import format_sweep


def main() -> None:
    n_values = [int(arg) for arg in sys.argv[1:]] or [4, 5, 6]
    print(f"=== Theorem 8 border sweep for n in {n_values} ===\n")
    points = sweep_theorem8(n_values, seeds=(1,), max_steps=6_000)
    print(format_sweep(points))
    disagreements = [p for p in points if not p.agrees]
    print(f"\n{len(points)} parameter points checked, "
          f"{len(points) - len(disagreements)} agree with the paper, "
          f"{len(disagreements)} disagree.")
    assert not disagreements, "simulation must agree with Theorem 8 everywhere"


if __name__ == "__main__":
    main()
