"""Demo: the scenario-campaign engine on the Theorem 8 border.

Compiles a declarative grid over the full small-``n`` parameter space
into a flat scenario list, runs it on the serial and the multiprocess
backend, and shows that both produce the identical campaign — the
determinism guarantee every regression test of the sweep machinery
relies on.  Run with::

    PYTHONPATH=src python examples/campaign_sweep.py
"""

from __future__ import annotations

from repro.analysis.border_sweep import sweep_theorem8
from repro.analysis.reporting import format_campaign, format_sweep
from repro.campaign import (
    CampaignRunner,
    ScenarioGrid,
    theorem8_specs,
)


def main() -> None:
    n_values = [4, 5]
    seeds = (1,)
    max_steps = 6_000

    # 1. A declarative grid compiles to a flat, deduplicated spec list.
    grid = ScenarioGrid(
        kinds=("theorem8-solvable",),
        n_values=n_values,
        schedulers=("round-robin", "random"),
        seeds=(1, 2, 3),
        point_filter=lambda n, f, k: k * n > (k + 1) * f,
        max_steps=max_steps,
    )
    compiled = grid.compile()
    print(f"declarative grid: {len(compiled)} scenarios on the solvable side")
    print(f"  first: {compiled[0].label()}")
    print(f"  last:  {compiled[-1].label()}")

    # 2. The full sweep (both sides of the border) as one campaign.
    specs = theorem8_specs(n_values, seeds=seeds, max_steps=max_steps)
    serial = CampaignRunner(backend="serial").run(specs)
    parallel = CampaignRunner(backend="process", workers=2).run(specs)

    print("\n=== campaign on the serial backend ===")
    print(format_campaign(serial))
    print("\n=== campaign on the process backend (2 workers) ===")
    print(format_campaign(parallel))

    identical = serial == parallel
    print(f"\nserial == process backend: {identical}")
    assert identical, "campaign backends must produce identical results"

    # 3. The batched verdict kernel: VERDICT_ONLY specs run as SoA waves,
    #    everything else (here: the impossible side's partitioning
    #    constructions) falls back to the scalar path — and the whole
    #    batched campaign is bit-identical to the scalar one.
    import time

    trimmed = theorem8_specs(
        n_values, seeds=seeds, max_steps=max_steps, recording="verdict-only")
    started = time.perf_counter()
    scalar = CampaignRunner(backend="serial").run(trimmed)
    scalar_seconds = time.perf_counter() - started
    started = time.perf_counter()
    batched = CampaignRunner(backend="serial", batch=True).run(trimmed)
    batch_seconds = time.perf_counter() - started
    print(f"\nbatched == scalar campaign: {batched == scalar} "
          f"(scalar {scalar_seconds * 1e3:.0f} ms, "
          f"batched {batch_seconds * 1e3:.0f} ms)")
    assert batched == scalar, "the scalar executor is the oracle"

    # 4. The analysis layer turns the campaign into the reproduced figure.
    points = sweep_theorem8(n_values, seeds=seeds, max_steps=max_steps)
    print("\n=== Theorem 8 border sweep (solvable iff k*n > (k+1)*f) ===")
    print(format_sweep(points, include_details=True))
    disagreements = [p for p in points if not p.agrees]
    print(f"\n{len(points)} points swept, {len(disagreements)} disagreements")
    assert not disagreements


if __name__ == "__main__":
    main()
