#!/usr/bin/env python3
"""Quickstart: solve k-set agreement with initially dead processes.

This example runs the paper's Section VI protocol (the FLP two-stage
protocol with waiting threshold ``L = n - f``) in an asynchronous system of
``n = 6`` processes of which up to ``f = 3`` may be initially dead, checks
the three k-set agreement properties on the recorded run, and prints the
closed-form Theorem 8 verdict for the same parameter point.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    FailurePattern,
    KSetAgreementProblem,
    KSetInitialCrash,
    execute,
    initial_crash_model,
    theorem8_verdict,
)
from repro.simulation.trace import format_summary


def main() -> None:
    n, f, k = 6, 3, 2

    print(f"=== k-set agreement with initially dead processes (n={n}, f={f}, k={k}) ===\n")
    verdict = theorem8_verdict(n, f, k)
    print(f"Theorem 8 says: {verdict}\n")

    model = initial_crash_model(n, f)
    algorithm = KSetInitialCrash(n, f)
    print(f"model:     {model.describe()}")
    print(f"algorithm: {algorithm.describe()}\n")

    proposals = {pid: f"value-{pid}" for pid in model.processes}
    dead = {5, 6}  # two of the allowed three initial crashes actually happen
    pattern = FailurePattern.initially_dead(model.processes, dead)

    run = execute(algorithm, model, proposals, failure_pattern=pattern)
    print(format_summary(run))

    report = KSetAgreementProblem(k).evaluate(run, proposals=proposals)
    print(f"\nproperty check: {report.summary()}")
    for violation in report.violations:
        print(f"  !! {violation}")
    assert report.all_ok, "the solvable side of Theorem 8 must hold on this run"
    print("\nAll three properties (k-agreement, validity, termination) hold.")


if __name__ == "__main__":
    main()
