#!/usr/bin/env python3
"""The Theorem 2 proof construction, executed step by step.

The script instantiates the paper's Theorem 2 scenario — synchronous
processes, asynchronous communication, ``f`` faults of which one may occur
during the execution — for ``n = 7``, ``f = 4``, ``k = 2``, and walks
through the ingredients of Theorem 1 with the Section VI protocol in the
role of the purported k-set agreement algorithm:

1. the Lemma 3 partition (one block of size ``n - f`` plus a remainder of
   size at least ``n - f + 1``),
2. the partitioning run witnessing conditions (A) and (B),
3. the consensus-impossibility catalogue entry discharging condition (C),
4. the indistinguishability check for condition (D),
5. the assembled Theorem 1 witness, and
6. the direct demonstration: one crash placed right after a process
   announced itself makes the initial-crash protocol lose termination.

Run with::

    python examples/partition_adversary.py
"""

from __future__ import annotations

from repro import KSetInitialCrash, Theorem2Scenario, theorem2_verdict
from repro.simulation.trace import format_decisions


def main() -> None:
    n, f, k = 7, 4, 2
    print(f"=== Theorem 2 construction for n={n}, f={f}, k={k} ===\n")
    print(f"closed form: {theorem2_verdict(n, f, k)}\n")

    scenario = Theorem2Scenario(n=n, f=f, k=k, max_steps=8_000)
    algorithm = KSetInitialCrash(n, f)

    print(f"model:     {scenario.model.describe()}")
    print(f"partition: {scenario.partition.describe()}")
    print(f"Lemma 3:   {scenario.lemma3_report()}\n")

    run = scenario.partitioned_run(algorithm)
    print("partitioning run (conditions (A)/(B) witness):")
    print(f"  decisions: {format_decisions(run)}")
    print(f"  distinct values: {sorted(map(repr, run.distinct_decisions()))}\n")

    witness = scenario.apply(algorithm)
    print(witness.describe())

    print("\ndirect demonstration of the lost property:")
    crash_run, report = scenario.crash_during_run_report(algorithm)
    print(f"  schedule: {crash_run.failure_pattern.describe()}")
    print(f"  outcome:  {report.summary()}")
    for violation in report.violations:
        print(f"  !! {violation}")
    assert witness.holds
    assert not report.termination_ok


if __name__ == "__main__":
    main()
