#!/usr/bin/env python3
"""Failure detectors: Sigma_k, Omega_k, Lemma 9 and the Corollary 13 border.

The script

1. prints sample outputs of the quorum family ``Sigma_k``, the leader
   family ``Omega_k`` and the partition detector ``(Sigma'_k, Omega'_k)``
   for a small failure pattern,
2. verifies Lemma 9 on a recorded partitioning history (every partitioning
   history is admissible for the weaker ``(Sigma_k, Omega_k)``),
3. runs the two protocols behind the possibility half of Corollary 13 —
   ``(Sigma, Omega)`` consensus and ``Sigma_{n-1}`` (n-1)-set agreement —
   and
4. prints the Corollary 13 solvability border for 4 <= n <= 10.

Run with::

    python examples/failure_detector_hierarchy.py
"""

from __future__ import annotations

from repro import (
    FailurePattern,
    KSetAgreementProblem,
    OmegaK,
    PartitionDetector,
    SigmaK,
    SigmaKSetAgreement,
    SigmaOmegaConsensus,
    asynchronous_model,
    corollary13_verdict,
    execute,
    sigma_omega_k,
    verify_lemma9,
)
from repro.analysis.reporting import format_table


def show_sample_outputs() -> None:
    processes = (1, 2, 3, 4, 5)
    pattern = FailurePattern(processes, {2: 0, 5: 6})
    print("failure pattern:", pattern.describe())
    sigma, omega = SigmaK(2), OmegaK(2, gst=4)
    partition = PartitionDetector([[1, 2, 3], [4], [5]], gst=4)
    rows = []
    for t in (1, 4, 8):
        rows.append(
            (
                t,
                sorted(sigma.output(1, t, pattern)),
                sorted(omega.output(1, t, pattern)),
                sorted(partition.output(1, t, pattern)["sigma"]),
            )
        )
    print(format_table(("t", "Sigma_2 at p1", "Omega_2 at p1", "Sigma'_3 at p1"), rows))
    print()


def check_lemma9() -> None:
    n, k = 6, 3
    detector = PartitionDetector([[1, 2, 3, 4], [5], [6]], gst=0)
    pattern = FailurePattern(tuple(range(1, n + 1)), {4: 5})
    from repro.failure_detectors.base import RecordedHistory

    history = RecordedHistory()
    for t in range(1, 12):
        for pid in range(1, n + 1):
            if not pattern.is_crashed(pid, t):
                history.record(pid, t, detector.output(pid, t, pattern))
    violations = verify_lemma9(history, pattern, k=k)
    print(f"Lemma 9 check on a (Sigma'_{k}, Omega'_{k}) history: "
          f"{len(violations)} violation(s) of the (Sigma_{k}, Omega_{k}) properties")
    assert not violations
    print()


def run_possibility_side() -> None:
    n = 5
    # k = 1: consensus from (Sigma, Omega)
    model = asynchronous_model(n, n - 1, failure_detector=sigma_omega_k(1, gst=0))
    run = execute(SigmaOmegaConsensus(n), model, {p: f"v{p}" for p in model.processes})
    report = KSetAgreementProblem(1).evaluate(run)
    print(f"(Sigma, Omega) consensus, n={n}: decisions {run.decisions()}  -> {report.summary()}")
    assert report.all_ok

    # k = n - 1: (n-1)-set agreement from Sigma_{n-1}
    model = asynchronous_model(n, n - 1, failure_detector=SigmaK(n - 1))
    pattern = FailurePattern(model.processes, {1: 0, 2: 4})
    run = execute(SigmaKSetAgreement(n), model, {p: f"v{p}" for p in model.processes},
                  failure_pattern=pattern)
    report = KSetAgreementProblem(n - 1).evaluate(run)
    print(f"Sigma_{n-1} (n-1)-set agreement, n={n}: decisions {run.decisions()}  -> {report.summary()}")
    assert report.all_ok
    print()


def print_border() -> None:
    rows = []
    for n in range(4, 11):
        verdicts = [str(corollary13_verdict(n, k).verdict) for k in range(1, n)]
        rows.append((n, ", ".join(f"k={k}:{v}" for k, v in zip(range(1, n), verdicts))))
    print("Corollary 13 border (solvable with (Sigma_k, Omega_k) iff k=1 or k=n-1):")
    print(format_table(("n", "verdicts"), rows))


def main() -> None:
    print("=== Failure detectors for k-set agreement ===\n")
    show_sample_outputs()
    check_lemma9()
    run_possibility_side()
    print_border()


if __name__ == "__main__":
    main()
